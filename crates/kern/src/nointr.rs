//! "No More Interrupts" (§2): a hardware thread per event type.
//!
//! Instead of registering handlers in an IDT, the kernel designates one
//! hardware thread per core per interrupt type. Each thread parks in
//! `mwait` on an event word; the event source (APIC timer, NIC, MSI-X
//! bridge) *writes that word*, and the thread wakes directly into its
//! handler body — no IRQ context, no vectoring, no preemption of
//! whatever else was running.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use switchless_core::machine::{Machine, ThreadId};
use switchless_core::tid::ThreadState;
use switchless_isa::asm::assemble;
use switchless_sim::error::SimError;
use switchless_sim::stats::Histogram;
use switchless_sim::time::Cycles;

use crate::ioengine::RetryPolicy;

/// One installed event-handler thread.
#[derive(Clone, Copy, Debug)]
pub struct EventHandler {
    /// The handler's hardware thread.
    pub tid: ThreadId,
    /// The event word the handler waits on (write here to fire).
    pub event_word: u64,
    /// Counter word the handler increments per handled event.
    pub handled_word: u64,
}

/// A set of per-event-type handler threads on one core.
#[derive(Clone, Debug)]
pub struct EventHandlerSet {
    /// Installed handlers, in installation order.
    pub handlers: Vec<EventHandler>,
}

impl EventHandlerSet {
    /// Installs `specs` = `(event-name, handler-work-cycles, priority)`
    /// handler threads on `core`. Returns the set with one event word
    /// per handler.
    ///
    /// The handler body is pure ISA: an event-counter loop that never
    /// misses wakeups (monitor → mwait → drain), doing `work` cycles of
    /// simulated handler work per event.
    pub fn install(
        m: &mut Machine,
        core: usize,
        specs: &[(&str, u32, u8)],
        image_base: u64,
    ) -> Result<EventHandlerSet, SimError> {
        let mut handlers = Vec::with_capacity(specs.len());
        for (i, &(_name, work, prio)) in specs.iter().enumerate() {
            let event_word = m.alloc(64);
            let handled_word = m.alloc(64);
            let prog = assemble(&format!(
                r#"
                .base {base:#x}
                ; r1 = events seen
                ; Arm-check-wait order: the monitor is armed *before* the
                ; counter is read, so a write landing between the read
                ; and the mwait trips the armed trigger and mwait falls
                ; through — no lost wakeups.
                entry:
                    movi r1, 0
                loop:
                    monitor {event}
                    ld r2, {event}
                    bne r2, r1, serve
                    mwait
                    jmp loop
                serve:
                    addi r1, r1, 1
                    work {work}
                    ld r3, {handled}
                    addi r3, r3, 1
                    st r3, {handled}
                    jmp loop
                "#,
                base = image_base + (i as u64) * 0x1000,
                event = event_word,
                handled = handled_word,
                work = work,
            ))
            .map_err(|e| SimError::Assemble {
                context: "event-handler template",
                detail: e.to_string(),
            })?;
            let tid = m.load_program(core, &prog)?;
            m.set_thread_prio(tid, prio);
            m.start_thread(tid);
            handlers.push(EventHandler {
                tid,
                event_word,
                handled_word,
            });
        }
        Ok(EventHandlerSet { handlers })
    }

    /// Fires event `idx` once (host-side event source: increments the
    /// event word through the DMA path).
    pub fn fire(&self, m: &mut Machine, idx: usize) {
        let h = self.handlers[idx];
        let v = m.peek_u64(h.event_word).wrapping_add(1);
        m.dma_write(h.event_word, &v.to_le_bytes());
    }

    /// Events handled so far by handler `idx`.
    #[must_use]
    pub fn handled(&self, m: &Machine, idx: usize) -> u64 {
        m.peek_u64(self.handlers[idx].handled_word)
    }
}

/// Default hcall number for the supervisor's triage service.
pub const HCALL_SUPERVISE: u16 = 120;

struct SupState {
    /// The shared exception-descriptor slot all wards point at.
    edp: u64,
    /// Supervised threads, in registration order.
    wards: Vec<ThreadId>,
    /// Ptids with a restart already scheduled.
    pending: HashSet<u32>,
    /// Per-ward fault count, drives the backoff schedule.
    attempts: HashMap<u32, u32>,
    policy: RetryPolicy,
    /// Fault (thread disable) → restart latency, in cycles.
    recovery: Histogram,
    restarts: u64,
    /// Cool-down after which a budget-exhausted (quarantined) ward is
    /// pardoned and restarted with a fresh attempt budget; `None` means
    /// quarantine is forever.
    pardon_after: Option<Cycles>,
}

/// A recovery supervisor: one hardware thread that parks on a shared
/// exception-descriptor slot and restarts faulted wards (§3 taken to
/// its conclusion — *recovery* without a context switch either).
///
/// Wards [`Supervisor::supervise`]d get their EDP pointed at the shared
/// slot. When one faults (watchdog expiry, div-zero, ...), the
/// descriptor write wakes the supervisor out of `mwait`; it acks the
/// slot (zero-to-ack, reopening it under backpressure) and schedules a
/// [`Machine::restart_thread`] after a capped [`RetryPolicy`] backoff.
/// Every triage and every restart also sweeps the ward list for
/// casualties whose descriptors were overflow-dropped, so simultaneous
/// faults are never lost — only their descriptors are.
pub struct Supervisor {
    /// The supervisor's hardware thread.
    pub tid: ThreadId,
    /// The shared exception-descriptor slot (32 bytes).
    pub edp: u64,
    state: Rc<RefCell<SupState>>,
}

/// Schedules a restart of `tid` after the policy backoff, or
/// quarantines it when the retry budget is spent.
fn schedule_restart(
    s: &mut SupState,
    mach: &mut Machine,
    st: &Rc<RefCell<SupState>>,
    tid: ThreadId,
) {
    if s.pending.contains(&tid.ptid.0) || mach.is_quarantined(tid) {
        return;
    }
    let n = s.attempts.entry(tid.ptid.0).or_insert(0);
    let attempt = *n;
    *n += 1;
    match s.policy.backoff(attempt) {
        Some(d) => {
            s.pending.insert(tid.ptid.0);
            let st2 = Rc::clone(st);
            let at = mach.now() + d;
            mach.at(at, move |inner| {
                let mut s = st2.borrow_mut();
                s.pending.remove(&tid.ptid.0);
                if let Some(fault_at) = inner.thread_fault_time(tid) {
                    s.recovery.record((inner.now() - fault_at).0);
                }
                if inner.restart_thread(tid) {
                    s.restarts += 1;
                }
                // The slot was busy while this restart was pending; a
                // second casualty may have had its descriptor dropped.
                sweep(&mut s, inner, &st2);
            });
        }
        None => {
            mach.counters_mut().inc("supervisor.gave_up");
            mach.quarantine_thread(tid);
            // Graceful fallback: a crash-loop storm is often transient
            // (a fault window that passes). With a pardon configured the
            // ward sits out the cool-down and then gets a fresh attempt
            // budget instead of staying dead for the machine's lifetime.
            if let Some(cool) = s.pardon_after {
                let st2 = Rc::clone(st);
                let at = mach.now() + cool;
                mach.at(at, move |inner| {
                    if !inner.is_quarantined(tid) {
                        return; // something else already revived it
                    }
                    let mut s = st2.borrow_mut();
                    s.attempts.insert(tid.ptid.0, 0);
                    // Deliberately no recovery-latency sample: the
                    // cool-down is a policy sentence, not recovery time.
                    if inner.restart_thread(tid) {
                        s.restarts += 1;
                        inner.counters_mut().inc("supervisor.pardoned");
                    }
                });
            }
        }
    }
}

/// Finds descriptor-less casualties: wards sitting disabled with a
/// fault time but no scheduled restart (their descriptor hit
/// backpressure and was dropped).
fn sweep(s: &mut SupState, mach: &mut Machine, st: &Rc<RefCell<SupState>>) {
    let wards = s.wards.clone();
    for tid in wards {
        if mach.thread_state(tid) == ThreadState::Disabled && mach.thread_fault_time(tid).is_some()
        {
            schedule_restart(s, mach, st, tid);
        }
    }
}

impl Supervisor {
    /// Installs the supervisor thread on `core` (program image at
    /// `image_base`, one 4 KiB page).
    pub fn install(
        m: &mut Machine,
        core: usize,
        policy: RetryPolicy,
        image_base: u64,
    ) -> Result<Supervisor, SimError> {
        let edp = m.alloc(64); // 32-byte descriptor, own cache line
        let prog = assemble(&format!(
            r#"
            .base {base:#x}
            ; Arm-check-wait on the descriptor KIND word: nonzero means
            ; a ward faulted. The hcall acks (zeroes) it, so the re-check
            ; after serving catches a descriptor that landed meanwhile.
            entry:
                movi r1, 0
            loop:
                monitor {edp}
                ld r2, {edp}
                bne r2, r1, serve
                mwait
                jmp loop
            serve:
                hcall {sup}
                jmp loop
            "#,
            base = image_base,
            edp = edp,
            sup = HCALL_SUPERVISE,
        ))
        .map_err(|e| SimError::Assemble {
            context: "supervisor template",
            detail: e.to_string(),
        })?;
        let tid = m.load_program(core, &prog)?;
        // A private slot so a supervisor fault can't halt the machine.
        let own_edp = m.alloc(64);
        m.set_thread_edp(tid, own_edp);
        m.set_thread_prio(tid, 7);
        m.start_thread(tid);

        let state = Rc::new(RefCell::new(SupState {
            edp,
            wards: Vec::new(),
            pending: HashSet::new(),
            attempts: HashMap::new(),
            policy,
            recovery: Histogram::new(),
            restarts: 0,
            pardon_after: None,
        }));

        let st = Rc::clone(&state);
        m.register_hcall(HCALL_SUPERVISE, move |mach, _tid| {
            let mut s = st.borrow_mut();
            let kind = mach.peek_u64(s.edp);
            if kind != 0 {
                let ptid = mach.peek_u64(s.edp + 8);
                mach.poke_u64(s.edp, 0); // ack: reopen the slot
                mach.charge(Cycles(50)); // triage bookkeeping
                if let Some(tid) = s
                    .wards
                    .iter()
                    .copied()
                    .find(|t| u64::from(t.ptid.0) == ptid)
                {
                    schedule_restart(&mut s, mach, &st, tid);
                }
            }
            sweep(&mut s, mach, &st);
        });

        Ok(Supervisor { tid, edp, state })
    }

    /// Registers `tid` as a ward: its exceptions now land in the shared
    /// slot and earn it a restart. Set a watchdog separately
    /// ([`Machine::set_thread_watchdog`]) to catch wedged parks too.
    pub fn supervise(&self, m: &mut Machine, tid: ThreadId) {
        m.set_thread_edp(tid, self.edp);
        self.state.borrow_mut().wards.push(tid);
    }

    /// Enables the graceful quarantine fallback: a ward whose retry
    /// budget is exhausted is pardoned `cool` cycles after quarantine —
    /// restarted with a fresh attempt budget (counted as
    /// `supervisor.pardoned`) — instead of staying dead forever. `None`
    /// (the default) keeps quarantine permanent.
    pub fn pardon_after(&self, cool: Option<Cycles>) {
        self.state.borrow_mut().pardon_after = cool;
    }

    /// Fault → restart latency histogram.
    #[must_use]
    pub fn recovery_latency(&self) -> Histogram {
        self.state.borrow().recovery.clone()
    }

    /// Restarts performed.
    #[must_use]
    pub fn restarts(&self) -> u64 {
        self.state.borrow().restarts
    }

    /// Clears measurement state (end of warmup). Retry bookkeeping is
    /// kept — backoff schedules survive a measurement reset.
    pub fn reset_measurements(&self) {
        let mut s = self.state.borrow_mut();
        s.recovery.reset();
        s.restarts = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use switchless_core::machine::MachineConfig;
    use switchless_dev::timer::ApicTimer;

    #[test]
    fn handler_wakes_per_event_and_reparks() {
        let mut m = Machine::new(MachineConfig::small());
        let set = EventHandlerSet::install(&mut m, 0, &[("timer", 500, 7)], 0x40000).unwrap();
        m.run_for(Cycles(5_000));
        assert_eq!(
            m.thread_state(set.handlers[0].tid),
            ThreadState::Waiting,
            "handler parks without polling"
        );
        for _ in 0..3 {
            set.fire(&mut m, 0);
            m.run_for(Cycles(10_000));
        }
        assert_eq!(set.handled(&m, 0), 3);
        assert_eq!(m.thread_state(set.handlers[0].tid), ThreadState::Waiting);
    }

    #[test]
    fn burst_of_events_all_drained() {
        // Events fired while the handler is mid-work must not be lost:
        // the counter-drain loop catches them.
        let mut m = Machine::new(MachineConfig::small());
        let set = EventHandlerSet::install(&mut m, 0, &[("nic", 2_000, 7)], 0x40000).unwrap();
        m.run_for(Cycles(5_000));
        for _ in 0..5 {
            set.fire(&mut m, 0); // all at once
        }
        m.run_for(Cycles(100_000));
        assert_eq!(set.handled(&m, 0), 5, "no lost events");
    }

    #[test]
    fn multiple_event_types_independent_threads() {
        let mut m = Machine::new(MachineConfig::small());
        let set = EventHandlerSet::install(
            &mut m,
            0,
            &[("timer", 300, 7), ("nic", 300, 6), ("disk", 300, 5)],
            0x40000,
        )
        .unwrap();
        m.run_for(Cycles(5_000));
        set.fire(&mut m, 1);
        m.run_for(Cycles(20_000));
        assert_eq!(set.handled(&m, 0), 0);
        assert_eq!(set.handled(&m, 1), 1);
        assert_eq!(set.handled(&m, 2), 0);
    }

    #[test]
    fn apic_timer_drives_scheduler_handler() {
        // The §2 sketch end-to-end: the APIC timer increments a counter;
        // the "kernel scheduler" hardware thread wakes per tick.
        let mut m = Machine::new(MachineConfig::small());
        let set =
            EventHandlerSet::install(&mut m, 0, &[("sched-tick", 1_000, 7)], 0x40000).unwrap();
        m.run_for(Cycles(2_000));
        ApicTimer::start_periodic(
            &mut m,
            set.handlers[0].event_word,
            Cycles(10_000),
            Cycles(30_000),
            5,
        );
        m.run_for(Cycles(300_000));
        assert_eq!(set.handled(&m, 0), 5);
    }

    /// A park/serve worker waiting on `mb` forever.
    fn ward_src(base: u64, mb: u64) -> String {
        format!(
            r#"
            .base {base:#x}
            entry:
                movi r1, 0
            loop:
                monitor {mb}
                ld r2, {mb}
                bne r2, r1, serve
                mwait
                jmp loop
            serve:
                mov r1, r2
                jmp loop
            "#
        )
    }

    #[test]
    fn supervisor_restarts_wedged_ward() {
        let mut m = Machine::new(MachineConfig::small());
        let sup = Supervisor::install(&mut m, 0, RetryPolicy::default(), 0x40000).unwrap();
        let mb = m.alloc(64);
        let ward = m
            .load_program(0, &assemble(&ward_src(0x50000, mb)).unwrap())
            .unwrap();
        sup.supervise(&mut m, ward);
        m.set_thread_watchdog(ward, Some(Cycles(10_000)));
        m.start_thread(ward);
        // Nobody ever writes the mailbox: the ward wedges, the watchdog
        // turns it into a descriptor, the supervisor restarts it (and it
        // wedges again — the cycle is the point).
        m.run_for(Cycles(100_000));
        assert!(
            sup.restarts() >= 2,
            "restart cycle running: {}",
            sup.restarts()
        );
        assert_eq!(
            sup.recovery_latency().count(),
            sup.restarts(),
            "one latency sample per restart"
        );
        assert!(m.halted_reason().is_none(), "machine survives the wedging");
    }

    #[test]
    fn overflow_dropped_casualty_is_swept() {
        // Two wards crash near-simultaneously into ONE descriptor slot:
        // the second descriptor is dropped by backpressure, but the
        // supervisor's sweep still finds and restarts the second ward.
        let mut m = Machine::new(MachineConfig::small());
        let sup = Supervisor::install(
            &mut m,
            0,
            RetryPolicy {
                initial_backoff: Cycles(2_000),
                max_backoff: Cycles(2_000),
                max_retries: 4,
            },
            0x40000,
        )
        .unwrap();
        // Crash on the first life only; halt cleanly on the second.
        let mk = |base: u64, ctr: u64| {
            assemble(&format!(
                r#"
                .base {base:#x}
                entry:
                    ld r1, {ctr}
                    addi r1, r1, 1
                    st r1, {ctr}
                    movi r2, 1
                    beq r1, r2, crash
                    halt
                crash:
                    movi r3, 0
                    div r4, r4, r3
                    halt
                "#
            ))
            .unwrap()
        };
        let ctr_a = m.alloc(64);
        let ctr_b = m.alloc(64);
        let ta = m.load_program(0, &mk(0x50000, ctr_a)).unwrap();
        let tb = m.load_program(0, &mk(0x60000, ctr_b)).unwrap();
        sup.supervise(&mut m, ta);
        sup.supervise(&mut m, tb);
        m.start_thread(ta);
        m.start_thread(tb);
        m.run_for(Cycles(100_000));
        assert_eq!(m.peek_u64(ctr_a), 2, "ward A got its second life");
        assert_eq!(
            m.peek_u64(ctr_b),
            2,
            "ward B recovered despite no descriptor"
        );
        assert_eq!(m.thread_state(ta), ThreadState::Halted);
        assert_eq!(m.thread_state(tb), ThreadState::Halted);
        assert_eq!(sup.restarts(), 2);
        assert!(
            m.counters().get("exception.descriptor_overflow") >= 1,
            "the second descriptor did hit backpressure"
        );
    }

    #[test]
    fn exhausted_retries_quarantine_the_ward() {
        let mut m = Machine::new(MachineConfig::small());
        let sup = Supervisor::install(
            &mut m,
            0,
            RetryPolicy {
                initial_backoff: Cycles(5_000),
                max_backoff: Cycles(5_000),
                max_retries: 1,
            },
            0x40000,
        )
        .unwrap();
        let mb = m.alloc(64);
        let ward = m
            .load_program(0, &assemble(&ward_src(0x50000, mb)).unwrap())
            .unwrap();
        sup.supervise(&mut m, ward);
        m.set_thread_watchdog(ward, Some(Cycles(10_000)));
        m.start_thread(ward);
        m.run_for(Cycles(200_000));
        // One restart (fault -> 5k backoff -> restart), then the second
        // wedge exhausts the budget: quarantined, no restart churn.
        assert_eq!(sup.restarts(), 1);
        assert!(m.is_quarantined(ward));
        assert_eq!(m.counters().get("supervisor.gave_up"), 1);
        // Recovery latency = watchdog descriptor -> restart: the 5k
        // backoff plus the supervisor's wake+triage overhead.
        let lat = sup.recovery_latency();
        assert!(lat.min() >= 5_000, "min {}", lat.min());
        assert!(lat.max() < 8_000, "max {}", lat.max());
        assert_eq!(m.thread_state(ward), ThreadState::Disabled);
    }

    #[test]
    fn pardon_revives_quarantined_ward_with_fresh_budget() {
        let mut m = Machine::new(MachineConfig::small());
        let sup = Supervisor::install(
            &mut m,
            0,
            RetryPolicy {
                initial_backoff: Cycles(5_000),
                max_backoff: Cycles(5_000),
                max_retries: 1,
            },
            0x40000,
        )
        .unwrap();
        sup.pardon_after(Some(Cycles(50_000)));
        let mb = m.alloc(64);
        let ward = m
            .load_program(0, &assemble(&ward_src(0x50000, mb)).unwrap())
            .unwrap();
        sup.supervise(&mut m, ward);
        m.set_thread_watchdog(ward, Some(Cycles(10_000)));
        m.start_thread(ward);
        // Fault ~10k, restart ~15k, fault ~25k -> budget spent -> quarantine.
        m.run_for(Cycles(40_000));
        assert!(m.is_quarantined(ward), "budget exhausted first");
        assert_eq!(m.counters().get("supervisor.gave_up"), 1);
        // Pardon lands ~75k: quarantine lifted, budget reset, the ward
        // gets another restart cycle instead of staying dead.
        m.run_for(Cycles(45_000));
        assert!(!m.is_quarantined(ward), "pardoned after the cool-down");
        assert_eq!(m.counters().get("supervisor.pardoned"), 1);
        // The fresh budget drives a full second quarantine->pardon lap.
        m.run_for(Cycles(120_000));
        assert!(m.counters().get("supervisor.gave_up") >= 2);
        assert!(m.counters().get("supervisor.pardoned") >= 2);
        assert!(m.halted_reason().is_none());
    }

    #[test]
    fn install_surfaces_structured_errors() {
        // Core 99 does not exist: the error is a structured SimError
        // (machine layer), not a panic.
        let mut m = Machine::new(MachineConfig::small());
        let Err(err) = Supervisor::install(&mut m, 99, RetryPolicy::default(), 0x40000) else {
            panic!("install on a nonexistent core must fail")
        };
        assert!(matches!(err, SimError::Machine { .. }), "{err}");
        assert!(err.to_string().contains("core 99"), "{err}");
    }
}

//! "Simpler Distributed Programming" (§2): thread-per-request with
//! blocking RPC.
//!
//! Each request gets its own hardware thread, which issues a remote call
//! and **blocks** in `mwait` on its response word — "simple blocking I/O
//! semantics without suffering from significant thread scheduling
//! overheads". With enough in-flight hardware threads, remote latency is
//! fully hidden and the core stays busy on useful work. The baseline
//! comparison (few threads + software multiplexing) runs through the
//! queueing models in `switchless-legacy`.

use std::cell::RefCell;
use std::rc::Rc;

use switchless_core::machine::{Machine, MachineError, ThreadId};
use switchless_dev::fabric::Fabric;
use switchless_isa::asm::assemble;
use switchless_sim::time::Cycles;

/// Default hcall for RPC issue.
pub const HCALL_RPC: u16 = 130;
/// Default hcall for fan-out RPC issue.
pub const HCALL_FANOUT: u16 = 131;

/// The installed thread-per-request runtime.
pub struct DistRt {
    /// Request threads.
    pub threads: Vec<ThreadId>,
    /// Per-thread response words.
    pub resp_words: Vec<u64>,
    issued: Rc<RefCell<u64>>,
}

/// Configuration for [`DistRt::install`].
#[derive(Clone, Copy, Debug)]
pub struct DistRtConfig {
    /// Number of request threads (in-flight requests).
    pub threads: usize,
    /// RPC round-trips each thread performs before halting.
    pub iters: u32,
    /// Local compute cycles per response.
    pub local_work: u32,
    /// Remote service time per RPC.
    pub remote_service: Cycles,
    /// Fabric latency model.
    pub fabric: Fabric,
}

impl DistRt {
    /// Installs `cfg.threads` request threads on `core`.
    pub fn install(
        m: &mut Machine,
        core: usize,
        cfg: DistRtConfig,
        image_base: u64,
    ) -> Result<DistRt, MachineError> {
        assert!(cfg.threads > 0, "need at least one request thread");
        let mut threads = Vec::with_capacity(cfg.threads);
        let mut resp_words = Vec::with_capacity(cfg.threads);
        for i in 0..cfg.threads {
            let resp = m.alloc(64);
            resp_words.push(resp);
            let prog = assemble(&format!(
                r#"
                .base {base:#x}
                entry:
                    movi r1, 0          ; rpc seq
                    movi r6, {iters}
                    movi r7, 0          ; completed
                loop:
                    addi r1, r1, 1
                    hcall {rpc}         ; host issues the remote call
                wait:
                    monitor {resp}
                    ld r2, {resp}
                    beq r2, r1, got
                    mwait
                    jmp wait
                got:
                    work {lwork}
                    addi r7, r7, 1
                    bne r7, r6, loop
                    halt
                "#,
                base = image_base + (i as u64) * 0x1000,
                iters = cfg.iters,
                rpc = HCALL_RPC,
                resp = resp,
                lwork = cfg.local_work,
            ))
            .expect("request-thread template is valid");
            let tid = m.load_program_user(core, &prog)?;
            threads.push(tid);
        }

        let issued = Rc::new(RefCell::new(0u64));
        let st = Rc::clone(&issued);
        let thread_ids = threads.clone();
        let resp_copy = resp_words.clone();
        m.register_hcall(HCALL_RPC, move |mach, tid| {
            let idx = thread_ids
                .iter()
                .position(|&t| t == tid)
                .expect("rpc hcall from unknown thread");
            let seq = mach.thread_reg(tid, 1);
            let now = mach.now();
            cfg.fabric
                .rpc(mach, now, cfg.remote_service, resp_copy[idx], seq);
            *st.borrow_mut() += 1;
            mach.charge(Cycles(100)); // serialize + send cost
        });

        for &t in &threads {
            m.start_thread(t);
        }
        Ok(DistRt {
            threads,
            resp_words,
            issued,
        })
    }

    /// RPCs issued so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        *self.issued.borrow()
    }

    /// Runs until all request threads halt (or `limit`); returns the
    /// elapsed cycles, or `None` on timeout.
    pub fn run_to_completion(&self, m: &mut Machine, limit: Cycles) -> Option<Cycles> {
        let t0 = m.now();
        for &t in &self.threads {
            if !m.run_until_state(t, switchless_core::tid::ThreadState::Halted, limit) {
                return None;
            }
        }
        Some(m.now() - t0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use switchless_core::machine::MachineConfig;

    fn cfg(threads: usize, iters: u32) -> DistRtConfig {
        DistRtConfig {
            threads,
            iters,
            local_work: 2_000,
            remote_service: Cycles(3_000),
            fabric: Fabric {
                one_way: Cycles(6_000),
            },
        }
    }

    #[test]
    fn single_thread_bounded_by_rtt() {
        let mut m = Machine::new(MachineConfig::small());
        let rt = DistRt::install(&mut m, 0, cfg(1, 10), 0x40000).unwrap();
        let elapsed = rt
            .run_to_completion(&mut m, Cycles(10_000_000))
            .expect("completes");
        // Each iteration >= rtt (12k) + remote (3k) + local (2k) = 17k.
        assert!(elapsed.0 >= 10 * 17_000, "{elapsed}");
        assert_eq!(rt.issued(), 10);
    }

    #[test]
    fn many_threads_hide_remote_latency() {
        // Fixed total work: 64 RPCs. 1 thread serializes them; 16
        // threads overlap the remote legs.
        let total = 64u32;
        let run = |threads: usize| {
            let mut m = Machine::new(MachineConfig::small());
            let rt =
                DistRt::install(&mut m, 0, cfg(threads, total / threads as u32), 0x40000).unwrap();
            rt.run_to_completion(&mut m, Cycles(100_000_000))
                .expect("completes")
                .0
        };
        let serial = run(1);
        let parallel = run(16);
        assert!(
            parallel * 4 < serial,
            "16 threads ({parallel}) should be >=4x faster than 1 ({serial})"
        );
    }

    #[test]
    fn blocking_threads_consume_no_cycles_while_waiting() {
        let mut m = Machine::new(MachineConfig::small());
        let rt = DistRt::install(&mut m, 0, cfg(4, 5), 0x40000).unwrap();
        rt.run_to_completion(&mut m, Cycles(10_000_000)).unwrap();
        // Billed cycles per thread ≈ issue + local work, not RTT.
        for &t in &rt.threads {
            let billed = m.billed_cycles(t).0;
            // 5 iters * (100 issue + 2000 local + loop overhead+act).
            assert!(billed < 40_000, "thread billed {billed} cycles");
        }
    }
}

/// Configuration for [`FanoutRt::install`].
#[derive(Clone, Copy, Debug)]
pub struct FanoutConfig {
    /// Number of request threads.
    pub threads: usize,
    /// Fan-out rounds per thread.
    pub iters: u32,
    /// Sub-requests per round (each to a different remote).
    pub fanout: usize,
    /// Local aggregation work per completed round.
    pub local_work: u32,
    /// Base remote service time; leg `i` takes `base * (1 + i % 3)` so
    /// rounds always have a slowest straggler.
    pub remote_service: Cycles,
    /// Fabric latency model.
    pub fabric: Fabric,
}

/// Fan-out/fan-in requests: each round issues `fanout` sub-RPCs and a
/// single hardware thread **blocks on all of them at once** — §3.1's
/// "a hardware thread can monitor multiple memory locations", the
/// pattern scatter-gather services (search, KV multiget) need.
pub struct FanoutRt {
    /// Request threads.
    pub threads: Vec<ThreadId>,
    /// Per-thread arrays of response words (one per fan-out leg).
    pub resp_words: Vec<Vec<u64>>,
    issued: Rc<RefCell<u64>>,
}

impl FanoutRt {
    /// Installs the fan-out runtime on `core`.
    ///
    /// # Panics
    ///
    /// Panics if `fanout` is 0 or greater than 8 (the generated wait loop
    /// uses a register per comparison and must stay readable).
    pub fn install(
        m: &mut Machine,
        core: usize,
        cfg: FanoutConfig,
        image_base: u64,
    ) -> Result<FanoutRt, MachineError> {
        assert!((1..=8).contains(&cfg.fanout), "fanout must be 1..=8");
        assert!(cfg.threads > 0, "need at least one request thread");
        let mut threads = Vec::with_capacity(cfg.threads);
        let mut resp_words = Vec::with_capacity(cfg.threads);
        for t in 0..cfg.threads {
            let legs: Vec<u64> = (0..cfg.fanout).map(|_| m.alloc(64)).collect();
            // Arm-check-wait over ALL legs: arm every monitor, then
            // compare every response word against the round sequence;
            // only if all match proceed. A straggler landing mid-check
            // trips the armed trigger and mwait falls through.
            let arms: String = legs.iter().map(|r| format!("    monitor {r}\n")).collect();
            let checks: String = legs
                .iter()
                .map(|r| format!("    ld r2, {r}\n    bne r2, r1, park\n"))
                .collect();
            let prog = assemble(&format!(
                r#"
                .base {base:#x}
                entry:
                    movi r1, 0
                    movi r6, {iters}
                    movi r7, 0
                loop:
                    addi r1, r1, 1
                    hcall {fanout}
                wait:
                {arms}
                {checks}
                    jmp got
                park:
                    mwait
                    jmp wait
                got:
                    work {lwork}
                    addi r7, r7, 1
                    bne r7, r6, loop
                    halt
                "#,
                base = image_base + (t as u64) * 0x1000,
                iters = cfg.iters,
                fanout = HCALL_FANOUT,
                arms = arms,
                checks = checks,
                lwork = cfg.local_work,
            ))
            .expect("fanout template is valid");
            let tid = m.load_program_user(core, &prog)?;
            threads.push(tid);
            resp_words.push(legs);
        }

        let issued = Rc::new(RefCell::new(0u64));
        let st = Rc::clone(&issued);
        let thread_ids = threads.clone();
        let legs_copy = resp_words.clone();
        m.register_hcall(HCALL_FANOUT, move |mach, tid| {
            let idx = thread_ids
                .iter()
                .position(|&t| t == tid)
                .expect("fanout hcall from unknown thread");
            let seq = mach.thread_reg(tid, 1);
            let now = mach.now();
            for (i, &resp) in legs_copy[idx].iter().enumerate() {
                // Deterministic straggler pattern: leg service varies 1-3x.
                let svc = Cycles(cfg.remote_service.0 * (1 + (i as u64 + seq) % 3));
                cfg.fabric.rpc(mach, now, svc, resp, seq);
                *st.borrow_mut() += 1;
            }
            mach.charge(Cycles(100 * legs_copy[idx].len() as u64));
        });

        for &t in &threads {
            m.start_thread(t);
        }
        Ok(FanoutRt {
            threads,
            resp_words,
            issued,
        })
    }

    /// Sub-RPCs issued so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        *self.issued.borrow()
    }

    /// Runs until all request threads halt (or `limit`); returns the
    /// elapsed cycles, or `None` on timeout.
    pub fn run_to_completion(&self, m: &mut Machine, limit: Cycles) -> Option<Cycles> {
        let t0 = m.now();
        for &t in &self.threads {
            if !m.run_until_state(t, switchless_core::tid::ThreadState::Halted, limit) {
                return None;
            }
        }
        Some(m.now() - t0)
    }
}

#[cfg(test)]
mod fanout_tests {
    use super::*;
    use switchless_core::machine::MachineConfig;

    fn cfg(threads: usize, iters: u32, fanout: usize) -> FanoutConfig {
        FanoutConfig {
            threads,
            iters,
            fanout,
            local_work: 1_000,
            remote_service: Cycles(3_000),
            fabric: Fabric {
                one_way: Cycles(6_000),
            },
        }
    }

    #[test]
    fn fanout_round_bounded_by_slowest_leg_not_sum() {
        let mut m = Machine::new(MachineConfig::small());
        let rt = FanoutRt::install(&mut m, 0, cfg(1, 8, 4), 0x40000).unwrap();
        let elapsed = rt
            .run_to_completion(&mut m, Cycles(100_000_000))
            .expect("completes");
        assert_eq!(rt.issued(), 32, "8 rounds x 4 legs");
        // Slowest leg = 3x base = 9k + rtt 12k = 21k; serial sum would be
        // ~4 x (12k + ~6k) = 72k per round. Assert well under serial.
        let per_round = elapsed.0 / 8;
        assert!(
            per_round < 40_000,
            "per round {per_round} (not overlapped?)"
        );
        assert!(
            per_round >= 21_000,
            "per round {per_round} (faster than physics)"
        );
    }

    #[test]
    fn fanout_waits_for_every_leg() {
        // With one leg artificially the slowest, the round must not
        // complete before it: issued counts match and threads halt only
        // after all legs of all rounds.
        let mut m = Machine::new(MachineConfig::small());
        let rt = FanoutRt::install(&mut m, 0, cfg(2, 3, 3), 0x40000).unwrap();
        rt.run_to_completion(&mut m, Cycles(100_000_000)).unwrap();
        assert_eq!(rt.issued(), 2 * 3 * 3);
        for legs in &rt.resp_words {
            for &r in legs {
                assert_eq!(m.peek_u64(r), 3, "every leg saw the final round seq");
            }
        }
    }

    #[test]
    fn fanout_one_leg_equals_plain_rpc_shape() {
        let mut m = Machine::new(MachineConfig::small());
        let rt = FanoutRt::install(&mut m, 0, cfg(1, 5, 1), 0x40000).unwrap();
        let elapsed = rt
            .run_to_completion(&mut m, Cycles(100_000_000))
            .expect("completes");
        // leg service alternates 1x..3x of 3k; rtt 12k: per round 15k-21k.
        let per_round = elapsed.0 / 5;
        assert!((14_000..30_000).contains(&per_round), "{per_round}");
    }
}

//! "No VM-Exits" + "Untrusted Hypervisors" (§2).
//!
//! The guest runs in a user-mode hardware thread. A `vmcall` does not
//! mode-switch: the hardware writes a VM-exit descriptor at the guest's
//! EDP and **disables the guest thread**. The hypervisor — itself an
//! *unprivileged, user-mode* hardware thread — monitors the descriptor
//! area, services the exit, and restarts the guest using nothing but a
//! TDT entry granting it `start` rights over the guest. For I/O exits it
//! chains to a privileged kernel thread through an ordinary mailbox.
//!
//! That is the paper's claim made executable: the hypervisor provides
//! full functionality "without privileged access to the kernel or the
//! hardware".

use switchless_core::exception::DESCRIPTOR_BYTES;
use switchless_core::machine::{Machine, MachineError, ThreadId};
use switchless_core::perm::{Perms, TdtEntry};
use switchless_core::tid::Vtid;
use switchless_isa::asm::assemble;
#[cfg(test)]
use switchless_sim::time::Cycles;

/// VM-exit numbers used by the guest.
pub mod exits {
    /// A cpuid-like exit the hypervisor handles locally.
    pub const CPUID: u16 = 1;
    /// An I/O exit that chains to the kernel thread.
    pub const IO: u16 = 2;
}

/// The installed hypervisor stack.
#[derive(Clone, Copy, Debug)]
pub struct Hypervisor {
    /// The guest thread (user mode).
    pub guest: ThreadId,
    /// The hypervisor thread (user mode — the point).
    pub hv: ThreadId,
    /// The kernel I/O thread (supervisor).
    pub kernel: ThreadId,
    /// Guest exit-descriptor area (hv monitors word 0).
    pub guest_edp: u64,
    /// Exits-handled counter word.
    pub exits_word: u64,
    /// Kernel-chained I/O counter word.
    pub io_word: u64,
}

/// Configuration for [`install`].
#[derive(Clone, Copy, Debug)]
pub struct HvConfig {
    /// Guest compute cycles between exits.
    pub guest_work: u32,
    /// Hypervisor cycles per exit.
    pub hv_work: u32,
    /// Kernel cycles per chained I/O exit.
    pub kernel_work: u32,
    /// Number of exits the guest performs before halting.
    pub iters: u32,
    /// Exit number the guest raises ([`exits::CPUID`] or [`exits::IO`]).
    pub exit_num: u16,
}

/// Builds the guest + unprivileged hypervisor + kernel trio on `core`.
///
/// The machine must be in `TrapMode::Descriptor` (the default for
/// `MachineConfig::small`), or the `vmcall` would mode-switch instead.
pub fn install(m: &mut Machine, core: usize, cfg: HvConfig) -> Result<Hypervisor, MachineError> {
    let guest_edp = m.alloc(DESCRIPTOR_BYTES);
    let exits_word = m.alloc(64);
    let io_word = m.alloc(64);
    let kreq = m.alloc(64);
    let kresp = m.alloc(64);

    // Guest: work, vmcall, repeat. After each exit it is restarted by
    // the hypervisor and resumes at the instruction after the vmcall.
    let guest_prog = assemble(&format!(
        r#"
        .base 0x40000
        entry:
            movi r6, {iters}
            movi r7, 0
        loop:
            work {gwork}
            vmcall {exit}
            addi r7, r7, 1
            bne r7, r6, loop
            halt
        "#,
        iters = cfg.iters,
        gwork = cfg.guest_work,
        exit = cfg.exit_num,
    ))
    .expect("guest template is valid");
    let guest = m.load_program_user(core, &guest_prog)?;
    m.set_thread_edp(guest, guest_edp);

    // Kernel I/O thread: ordinary supervisor mailbox service.
    let kernel_prog = assemble(&format!(
        r#"
        .base 0x48000
        entry:
            movi r1, 0
        loop:
            monitor {kreq}
            ld r2, {kreq}
            bne r2, r1, serve
            mwait
            jmp loop
        serve:
            mov r1, r2
            work {kwork}
            st r2, {kresp}
            ld r4, {iow}
            addi r4, r4, 1
            st r4, {iow}
            jmp loop
        "#,
        kreq = kreq,
        kresp = kresp,
        kwork = cfg.kernel_work,
        iow = io_word,
    ))
    .expect("kernel template is valid");
    let kernel = m.load_program(core, &kernel_prog)?;
    m.set_thread_prio(kernel, 6);
    m.start_thread(kernel);

    // Hypervisor: user mode. Monitors the guest's descriptor kind word;
    // r0 is never written and serves as constant zero.
    let hv_prog = assemble(&format!(
        r#"
        .base 0x50000
        entry:
            movi r9, 0           ; kernel request seq
            movi r10, 0          ; exits handled
        loop:
            monitor {kind}
            ld r2, {kind}
            bne r2, r0, handle
            mwait
            jmp loop
        handle:
            ld r3, {info}        ; exit number
            work {hvwork}
            movi r4, {io_exit}
            bne r3, r4, finish
            ; chain the I/O request to the kernel thread
            addi r9, r9, 1
            st r9, {kreq}
        kwait:
            monitor {kresp}
            ld r5, {kresp}
            beq r5, r9, finish
            mwait
            jmp kwait
        finish:
            st r0, {kind}        ; clear BEFORE restarting the guest
            addi r10, r10, 1
            st r10, {exits}
            start 0              ; vtid 0 -> guest (TDT grants START)
            jmp loop
        "#,
        kind = guest_edp,
        info = guest_edp + 24,
        hvwork = cfg.hv_work,
        io_exit = exits::IO,
        kreq = kreq,
        kresp = kresp,
        exits = exits_word,
    ))
    .expect("hypervisor template is valid");
    let hv = m.load_program_user(core, &hv_prog)?;
    m.set_thread_prio(hv, 6);

    // The hypervisor's TDT: vtid 0 -> guest, start rights only. It can
    // wake the guest but cannot, say, rewrite the kernel's registers.
    let tdt = m.alloc(8 * 16);
    m.write_tdt_entry(tdt, Vtid(0), TdtEntry::new(guest.ptid, Perms::START));
    m.set_thread_tdtr(hv, tdt);

    m.start_thread(hv);
    m.start_thread(guest);
    Ok(Hypervisor {
        guest,
        hv,
        kernel,
        guest_edp,
        exits_word,
        io_word,
    })
}

/// Exits handled by the hypervisor so far.
#[must_use]
pub fn exits_handled(m: &Machine, h: &Hypervisor) -> u64 {
    m.peek_u64(h.exits_word)
}

#[cfg(test)]
mod tests {
    use super::*;
    use switchless_core::machine::MachineConfig;
    use switchless_core::tid::ThreadState;
    use switchless_isa::arch::Mode;

    fn cfg() -> HvConfig {
        HvConfig {
            guest_work: 2_000,
            hv_work: 500,
            kernel_work: 800,
            iters: 10,
            exit_num: exits::CPUID,
        }
    }

    #[test]
    fn guest_completes_with_unprivileged_hypervisor() {
        let mut m = Machine::new(MachineConfig::small());
        let h = install(&mut m, 0, cfg()).unwrap();
        assert_eq!(m.thread_mode(h.hv), Mode::User, "hypervisor is untrusted");
        m.run_for(Cycles(2_000_000));
        assert_eq!(m.thread_state(h.guest), ThreadState::Halted);
        assert_eq!(exits_handled(&m, &h), 10);
        assert_eq!(m.counters().get("exception.vm_exit"), 10);
        // No same-thread VM-exit round trips happened anywhere.
        assert_eq!(m.counters().get("vmexit.same_thread"), 0);
    }

    #[test]
    fn io_exits_chain_to_kernel_thread() {
        let mut m = Machine::new(MachineConfig::small());
        let h = install(
            &mut m,
            0,
            HvConfig {
                exit_num: exits::IO,
                iters: 5,
                ..cfg()
            },
        )
        .unwrap();
        m.run_for(Cycles(3_000_000));
        assert_eq!(m.thread_state(h.guest), ThreadState::Halted);
        assert_eq!(exits_handled(&m, &h), 5);
        assert_eq!(m.peek_u64(h.io_word), 5, "kernel served each I/O exit");
    }

    #[test]
    fn hypervisor_cannot_touch_kernel_thread() {
        // The TDT maps only the guest; a hostile hypervisor trying to
        // stop the kernel (vtid 1, unmapped) faults.
        let mut m = Machine::new(MachineConfig::small());
        let h = install(&mut m, 0, cfg()).unwrap();
        // Give the hv thread its own EDP so the fault is observable.
        let hv_edp = m.alloc(32);
        m.set_thread_edp(h.hv, hv_edp);
        // Patch: drive a fresh hostile thread with the same TDT instead.
        let hostile = assemble(
            r#"
            .base 0x60000
            entry:
                stop 1
                halt
            "#,
        )
        .unwrap();
        let bad = m.load_program_user(0, &hostile).unwrap();
        let tdt = m.alloc(8 * 16);
        m.write_tdt_entry(tdt, Vtid(0), TdtEntry::new(h.guest.ptid, Perms::START));
        m.set_thread_tdtr(bad, tdt);
        let bad_edp = m.alloc(32);
        m.set_thread_edp(bad, bad_edp);
        m.start_thread(bad);
        m.run_for(Cycles(100_000));
        assert_eq!(m.thread_state(bad), ThreadState::Disabled, "faulted");
        assert!(m.counters().get("exception.permission_denied") >= 1);
        // The kernel thread is unharmed.
        assert_ne!(m.thread_state(h.kernel), ThreadState::Disabled);
    }

    #[test]
    fn exit_handling_latency_beats_legacy_roundtrip_budget() {
        // One cpuid exit round trip (guest -> hv -> guest) measured
        // end-to-end, compared with the legacy ~1500-cycle VM-exit
        // hardware cost *alone* (before any hypervisor work).
        let mut m = Machine::new(MachineConfig::small());
        let h = install(
            &mut m,
            0,
            HvConfig {
                guest_work: 1,
                hv_work: 1,
                kernel_work: 1,
                iters: 100,
                exit_num: exits::CPUID,
            },
        )
        .unwrap();
        let t0 = m.now();
        assert!(m.run_until_state(h.guest, ThreadState::Halted, Cycles(3_000_000)));
        let elapsed = (m.now() - t0).0;
        let per_exit = elapsed / 100;
        // Whole exit round trip (two wakes + bookkeeping) should be a
        // few hundred cycles — same order as the bare legacy VM-exit
        // penalty, while also buying isolation.
        assert!(per_exit < 1500, "per-exit {per_exit} cycles");
    }
}

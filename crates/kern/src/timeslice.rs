//! A software time-slicing scheduler built from `start`/`stop` — the
//! paper's redefined OS-scheduler role (§4): "The OS scheduler will
//! enforce software policies by starting and stopping hardware threads
//! and setting their priorities... the scheduler will run in much
//! tighter loops."
//!
//! The scheduler is itself a hardware thread. It parks in `mwait` on the
//! APIC tick counter (no timer interrupt exists); on each tick it
//! `stop`s the currently running batch thread and `start`s the next —
//! preemptive round-robin time slicing with **zero** IRQ machinery, in
//! eight instructions of scheduler loop.

use switchless_core::machine::{Machine, MachineError, ThreadId};
use switchless_core::perm::{Perms, TdtEntry};
use switchless_core::tid::Vtid;
use switchless_isa::asm::assemble;

/// The installed time-slicing scheduler.
#[derive(Clone, Debug)]
pub struct TimesliceScheduler {
    /// The scheduler's own hardware thread (supervisor, high priority).
    pub sched: ThreadId,
    /// The batch threads being time-sliced.
    pub batch: Vec<ThreadId>,
    /// The APIC tick counter word the scheduler waits on.
    pub tick_word: u64,
    /// Progress counter words, one per batch thread.
    pub progress: Vec<u64>,
}

/// Installs `n_batch` compute threads and a scheduler thread that
/// time-slices them, one per timer tick. Drive the tick word with an
/// [`switchless_dev::timer::ApicTimer`] (or pokes, in tests).
///
/// # Panics
///
/// Panics unless `2 <= n_batch <= 8`.
pub fn install(
    m: &mut Machine,
    core: usize,
    n_batch: usize,
    image_base: u64,
) -> Result<TimesliceScheduler, MachineError> {
    assert!((2..=8).contains(&n_batch), "2..=8 batch threads supported");
    let tick_word = m.alloc(64);
    let mut batch = Vec::with_capacity(n_batch);
    let mut progress = Vec::with_capacity(n_batch);
    for i in 0..n_batch {
        let prog_word = m.alloc(64);
        progress.push(prog_word);
        // A batch thread: endless compute, bumping its progress counter.
        // It never yields — preemption comes entirely from the scheduler
        // stopping it.
        let prog = assemble(&format!(
            r#"
            .base {base:#x}
            entry:
            loop:
                work 500
                ld r1, {pw}
                addi r1, r1, 1
                st r1, {pw}
                jmp loop
            "#,
            base = image_base + (i as u64) * 0x1000,
            pw = prog_word,
        ))
        .expect("batch template");
        let tid = m.load_program_user(core, &prog)?;
        batch.push(tid);
    }

    // The scheduler: r3 = current vtid, r4 = n_batch, r5 = tick seen.
    let sched_prog = assemble(&format!(
        r#"
        .base {base:#x}
        entry:
            movi r3, 0
            movi r4, {n}
            movi r5, 0
            start r3            ; run batch thread 0 first
        loop:
            monitor {tick}
            ld r2, {tick}
            bne r2, r5, slice
            mwait
            jmp loop
        slice:
            mov r5, r2
            stop r3             ; preempt the current thread
            addi r3, r3, 1
            blt r3, r4, go
            movi r3, 0
        go:
            start r3            ; run the next one
            jmp loop
        "#,
        base = image_base + 0x20000,
        n = n_batch,
        tick = tick_word,
    ))
    .expect("scheduler template");
    let sched = m.load_program(core, &sched_prog)?;
    m.set_thread_prio(sched, 7);

    // Scheduler TDT: vtid i -> batch thread i, start+stop rights.
    let tdt = m.alloc(8 * 16);
    for (i, t) in batch.iter().enumerate() {
        m.write_tdt_entry(tdt, Vtid(i as u16), TdtEntry::new(t.ptid, Perms(0b1100)));
    }
    m.set_thread_tdtr(sched, tdt);
    m.start_thread(sched);
    Ok(TimesliceScheduler {
        sched,
        batch,
        tick_word,
        progress,
    })
}

impl TimesliceScheduler {
    /// Progress counter of batch thread `i`.
    #[must_use]
    pub fn progress_of(&self, m: &Machine, i: usize) -> u64 {
        m.peek_u64(self.progress[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use switchless_core::machine::MachineConfig;
    use switchless_core::tid::ThreadState;
    use switchless_dev::timer::ApicTimer;
    use switchless_sim::time::Cycles;

    #[test]
    fn exactly_one_batch_thread_runs_at_a_time() {
        let mut m = Machine::new(MachineConfig::small());
        let ts = install(&mut m, 0, 4, 0x40000).unwrap();
        m.run_for(Cycles(50_000));
        let running = ts
            .batch
            .iter()
            .filter(|&&t| m.thread_state(t) == ThreadState::Runnable)
            .count();
        assert_eq!(running, 1, "only the scheduled thread is enabled");
    }

    #[test]
    fn ticks_rotate_the_running_thread() {
        let mut m = Machine::new(MachineConfig::small());
        let ts = install(&mut m, 0, 3, 0x40000).unwrap();
        m.run_for(Cycles(20_000));
        assert_eq!(m.thread_state(ts.batch[0]), ThreadState::Runnable);
        for expect in [1usize, 2, 0, 1] {
            let t = m.peek_u64(ts.tick_word) + 1;
            m.poke_u64(ts.tick_word, t);
            m.run_for(Cycles(20_000));
            let running: Vec<usize> = ts
                .batch
                .iter()
                .enumerate()
                .filter(|&(_, &t)| m.thread_state(t) == ThreadState::Runnable)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(running, vec![expect], "after tick {t}");
        }
    }

    #[test]
    fn timer_driven_slicing_is_fair_without_interrupts() {
        let mut m = Machine::new(MachineConfig::small());
        let ts = install(&mut m, 0, 4, 0x40000).unwrap();
        m.run_for(Cycles(10_000));
        ApicTimer::start_periodic(&mut m, ts.tick_word, Cycles(50_000), Cycles(50_000), 40);
        m.run_for(Cycles(2_200_000));
        // 40 ticks / 4 threads = 10 slices each of ~50k cycles.
        let progress: Vec<u64> = (0..4).map(|i| ts.progress_of(&m, i)).collect();
        let min = *progress.iter().min().unwrap();
        let max = *progress.iter().max().unwrap();
        assert!(min > 0, "everyone ran: {progress:?}");
        assert!(
            max < min * 2,
            "time slicing should be roughly fair: {progress:?}"
        );
        // And the machinery involved no interrupts at all.
        assert_eq!(m.counters().get("exception.privileged_op"), 0);
        assert!(m.counters().get("thread.stops") >= 30);
    }

    #[test]
    fn scheduler_cost_per_slice_is_tiny() {
        // §4: "Since starting and stopping threads incurs low overhead,
        // the scheduler will run in much tighter loops."
        let mut m = Machine::new(MachineConfig::small());
        let ts = install(&mut m, 0, 2, 0x40000).unwrap();
        m.run_for(Cycles(20_000));
        let b0 = m.billed_cycles(ts.sched).0;
        for i in 1..=50u64 {
            m.poke_u64(ts.tick_word, i);
            m.run_for(Cycles(5_000));
        }
        let per_slice = (m.billed_cycles(ts.sched).0 - b0) / 50;
        assert!(
            per_slice < 200,
            "scheduler burns {per_slice} cycles per slice (expected tens)"
        );
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use switchless_core::machine::MachineConfig;
    use switchless_core::tid::ThreadState;
    use switchless_sim::time::Cycles;

    #[test]
    fn tick_bursts_coalesce_without_losing_rotation() {
        // Several ticks land while the scheduler is busy: the counter
        // check sees only the latest value, so a burst coalesces into
        // one rotation — the design is load-shedding, not queue-building.
        let mut m = Machine::new(MachineConfig::small());
        let ts = install(&mut m, 0, 3, 0x40000).unwrap();
        m.run_for(Cycles(20_000));
        // Burst of 5 ticks with no run in between.
        for i in 1..=5u64 {
            m.poke_u64(ts.tick_word, i);
        }
        m.run_for(Cycles(50_000));
        let running: Vec<usize> = ts
            .batch
            .iter()
            .enumerate()
            .filter(|&(_, &t)| m.thread_state(t) == ThreadState::Runnable)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(running.len(), 1, "still exactly one runnable");
        // Scheduler itself is parked again, not wedged.
        assert_eq!(m.thread_state(ts.sched), ThreadState::Waiting);
    }

    #[test]
    fn stopping_the_scheduler_freezes_rotation_but_not_the_running_thread() {
        let mut m = Machine::new(MachineConfig::small());
        let ts = install(&mut m, 0, 2, 0x40000).unwrap();
        m.run_for(Cycles(20_000));
        m.stop_thread(ts.sched);
        let p_before = ts.progress_of(&m, 0);
        m.poke_u64(ts.tick_word, 99);
        m.run_for(Cycles(200_000));
        // No rotation happened...
        assert_eq!(m.thread_state(ts.batch[1]), ThreadState::Disabled);
        // ...but the running batch thread kept computing.
        assert!(ts.progress_of(&m, 0) > p_before);
    }
}

//! A simple DRAM timing model: fixed access latency plus channel
//! bandwidth queueing.
//!
//! §4's key capacity argument is that thread state spilled *off-chip* pays
//! "severe performance losses", so the DRAM model only needs to be accurate
//! enough to make off-chip clearly worse than L2/L3: a fixed CAS-ish
//! latency plus a per-channel busy window that models bandwidth contention
//! under bursts (e.g. many thread-state transfers at once).

use switchless_sim::time::Cycles;

/// Configuration for the [`Dram`] model.
#[derive(Clone, Copy, Debug)]
pub struct DramConfig {
    /// Idle (unloaded) access latency. ~60 ns at 3 GHz ≈ 180 cycles.
    pub latency: Cycles,
    /// Cycles a channel stays busy per 64-byte line transferred
    /// (64 B / ~25.6 GB/s at 3 GHz ≈ 8 cycles).
    pub cycles_per_line: Cycles,
    /// Number of independent channels.
    pub channels: usize,
}

impl Default for DramConfig {
    fn default() -> DramConfig {
        DramConfig {
            latency: Cycles(180),
            cycles_per_line: Cycles(8),
            channels: 4,
        }
    }
}

/// DRAM with per-channel bandwidth occupancy.
#[derive(Clone, Debug)]
pub struct Dram {
    config: DramConfig,
    /// Per-channel time at which the channel becomes free.
    busy_until: Vec<Cycles>,
    accesses: u64,
    stalled: u64,
}

impl Dram {
    /// Creates an idle DRAM model.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    #[must_use]
    pub fn new(config: DramConfig) -> Dram {
        assert!(config.channels > 0, "DRAM needs at least one channel");
        Dram {
            config,
            busy_until: vec![Cycles::ZERO; config.channels],
            accesses: 0,
            stalled: 0,
        }
    }

    /// Performs a line access at time `now` on the channel selected by the
    /// line address; returns total latency including queueing.
    pub fn access_line(&mut self, now: Cycles, line_addr: u64) -> Cycles {
        self.accesses += 1;
        let ch = (line_addr / 64) as usize % self.busy_until.len();
        let start = now.max(self.busy_until[ch]);
        if start > now {
            self.stalled += 1;
        }
        let done = start + self.config.cycles_per_line;
        self.busy_until[ch] = done;
        (done - now) + self.config.latency
    }

    /// Performs a bulk transfer of `lines` consecutive lines starting at
    /// `line_addr`; returns total latency (one latency + pipelined lines).
    pub fn access_bulk(&mut self, now: Cycles, line_addr: u64, lines: u64) -> Cycles {
        if lines == 0 {
            return Cycles::ZERO;
        }
        let mut last = Cycles::ZERO;
        for i in 0..lines {
            let l = self.access_line(now, line_addr + i * 64);
            last = last.max(l);
        }
        last
    }

    /// Lifetime (accesses, accesses-that-queued).
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.accesses, self.stalled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_channel() -> Dram {
        Dram::new(DramConfig {
            latency: Cycles(180),
            cycles_per_line: Cycles(8),
            channels: 1,
        })
    }

    #[test]
    fn unloaded_latency() {
        let mut d = one_channel();
        assert_eq!(d.access_line(Cycles(0), 0), Cycles(188));
    }

    #[test]
    fn back_to_back_queues() {
        let mut d = one_channel();
        let a = d.access_line(Cycles(0), 0);
        let b = d.access_line(Cycles(0), 64);
        assert_eq!(a, Cycles(188));
        assert_eq!(b, Cycles(196), "second access waits for the channel");
        assert_eq!(d.stats(), (2, 1));
    }

    #[test]
    fn channels_are_independent() {
        let mut d = Dram::new(DramConfig {
            latency: Cycles(180),
            cycles_per_line: Cycles(8),
            channels: 2,
        });
        let a = d.access_line(Cycles(0), 0);
        let b = d.access_line(Cycles(0), 64); // different channel
        assert_eq!(a, b);
    }

    #[test]
    fn idle_gap_resets_queueing() {
        let mut d = one_channel();
        d.access_line(Cycles(0), 0);
        let later = d.access_line(Cycles(1000), 64);
        assert_eq!(later, Cycles(188));
    }

    #[test]
    fn bulk_transfer_pipelines() {
        let mut d = one_channel();
        // 4 lines on one channel: 180 + 4*8 = 212 total.
        let total = d.access_bulk(Cycles(0), 0, 4);
        assert_eq!(total, Cycles(212));
        assert_eq!(d.access_bulk(Cycles(500), 0, 0), Cycles::ZERO);
    }
}

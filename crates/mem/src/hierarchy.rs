//! The full cache hierarchy: per-core L1/L2, shared L3, DRAM.
//!
//! Latencies follow the figures the paper's §4 arithmetic assumes for a
//! ~3 GHz server part: L1 ≈ 4 cycles, L2 ≈ 14, L3 ≈ 42, DRAM ≈ 190.
//! The hierarchy is inclusive-on-fill: a DRAM fill installs the line at
//! every level on the way back to the requesting core.

use switchless_sim::time::Cycles;

use crate::addr::PAddr;
use crate::cache::{Cache, CacheGeom, PartitionId};
use crate::dram::{Dram, DramConfig};

/// Which level served an access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum HitLevel {
    /// Served by the core's L1 data cache.
    L1,
    /// Served by the core's private L2.
    L2,
    /// Served by the shared L3.
    L3,
    /// Served by DRAM (off-chip).
    Dram,
}

/// Read or write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// Outcome of one access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessResult {
    /// Total load-to-use latency.
    pub latency: Cycles,
    /// The level that had the line.
    pub level: HitLevel,
}

/// Geometry and latency configuration for [`Hierarchy`].
#[derive(Clone, Copy, Debug)]
pub struct HierarchyConfig {
    /// Per-core L1 data cache geometry.
    pub l1: CacheGeom,
    /// Per-core private L2 geometry.
    pub l2: CacheGeom,
    /// Shared L3 geometry.
    pub l3: CacheGeom,
    /// L1 hit latency.
    pub lat_l1: Cycles,
    /// L2 hit latency.
    pub lat_l2: Cycles,
    /// L3 hit latency.
    pub lat_l3: Cycles,
    /// DRAM model parameters.
    pub dram: DramConfig,
}

impl HierarchyConfig {
    /// A representative server-class configuration.
    #[must_use]
    pub fn server() -> HierarchyConfig {
        HierarchyConfig {
            l1: CacheGeom {
                size_bytes: 32 * 1024,
                ways: 8,
            },
            l2: CacheGeom {
                size_bytes: 512 * 1024,
                ways: 8,
            },
            l3: CacheGeom {
                size_bytes: 8 * 1024 * 1024,
                ways: 16,
            },
            lat_l1: Cycles(4),
            lat_l2: Cycles(14),
            lat_l3: Cycles(42),
            dram: DramConfig::default(),
        }
    }

    /// A tiny configuration for fast unit tests.
    #[must_use]
    pub fn tiny() -> HierarchyConfig {
        HierarchyConfig {
            l1: CacheGeom {
                size_bytes: 1024,
                ways: 2,
            },
            l2: CacheGeom {
                size_bytes: 4096,
                ways: 4,
            },
            l3: CacheGeom {
                size_bytes: 16 * 1024,
                ways: 4,
            },
            lat_l1: Cycles(4),
            lat_l2: Cycles(14),
            lat_l3: Cycles(42),
            dram: DramConfig::default(),
        }
    }
}

/// A detached copy of one core's private cache levels (L1 + L2), used by
/// the shard engine's epoch workers.
///
/// In the serial engine, only instructions executing on core `c` touch
/// `l1[c]`/`l2[c]` (cross-core effects like DMA invalidates go through
/// the machine and end the epoch), so a worker may run against a clone
/// and the owner can splice it back verbatim at the epoch barrier —
/// LRU stamps, dirty bits, and hit/miss counts land exactly as if the
/// accesses had run serially. Accesses that would escalate to the shared
/// L3 return `None`; the worker abandons the epoch instead.
#[derive(Clone, Debug)]
pub struct CoreCaches {
    l1: Cache,
    l2: Cache,
    lat_l1: Cycles,
    lat_l2: Cycles,
    wb_l1: u64,
    wb_l2: u64,
}

impl CoreCaches {
    /// Serves one access from the private levels alone, mirroring the
    /// L1/L2 prefix of [`Hierarchy::access`] exactly. `None` means the
    /// line is in neither level and the access needs the shared L3.
    pub fn try_access(
        &mut self,
        addr: PAddr,
        kind: AccessKind,
        part: PartitionId,
    ) -> Option<AccessResult> {
        let write = kind == AccessKind::Write;
        if self.l1.access(addr, write) {
            return Some(AccessResult {
                latency: self.lat_l1,
                level: HitLevel::L1,
            });
        }
        if self.l2.access(addr, write) {
            if self.l1.fill(addr, part, write).is_some() {
                self.wb_l1 += 1;
            }
            return Some(AccessResult {
                latency: self.lat_l2,
                level: HitLevel::L2,
            });
        }
        None
    }

    /// Whether the view's L1 holds the line (no LRU/statistics effect).
    #[must_use]
    pub fn l1_contains(&self, addr: PAddr) -> bool {
        self.l1.contains(addr)
    }

    /// Applies a superblock's fetch stream against the view's L1 as one
    /// batch (see [`Cache::access_run`]): `false` — and no mutation —
    /// unless every line is L1-resident.
    pub fn l1_access_run(&mut self, lines: &[(PAddr, u64)], n: u64) -> bool {
        self.l1.access_run(lines, n)
    }

    /// Applies a memory-inclusive superblock's merged fetch+data stream
    /// against the view's L1 as one batch (see
    /// [`Cache::access_run_mixed`]): `false` — and no mutation — unless
    /// every line is L1-resident.
    pub fn l1_access_run_mixed(&mut self, lines: &[(PAddr, u64, bool)], n: u64) -> bool {
        self.l1.access_run_mixed(lines, n)
    }
}

/// A multi-core cache hierarchy.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    config: HierarchyConfig,
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    l3: Cache,
    dram: Dram,
    /// Dirty lines written back on eviction, per level (l1, l2, l3).
    writebacks: (u64, u64, u64),
}

impl Hierarchy {
    /// Builds a hierarchy for `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`.
    #[must_use]
    pub fn new(cores: usize, config: HierarchyConfig) -> Hierarchy {
        assert!(cores > 0, "hierarchy needs at least one core");
        Hierarchy {
            config,
            l1: (0..cores).map(|_| Cache::new(config.l1)).collect(),
            l2: (0..cores).map(|_| Cache::new(config.l2)).collect(),
            l3: Cache::new(config.l3),
            dram: Dram::new(config.dram),
            writebacks: (0, 0, 0),
        }
    }

    /// Number of cores this hierarchy was built for.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.l1.len()
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Performs one access from `core`, filling lines on the way back.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(
        &mut self,
        now: Cycles,
        core: usize,
        addr: PAddr,
        kind: AccessKind,
        part: PartitionId,
    ) -> AccessResult {
        let write = kind == AccessKind::Write;
        if self.l1[core].access(addr, write) {
            return AccessResult {
                latency: self.config.lat_l1,
                level: HitLevel::L1,
            };
        }
        if self.l2[core].access(addr, write) {
            if self.l1[core].fill(addr, part, write).is_some() {
                self.writebacks.0 += 1;
            }
            return AccessResult {
                latency: self.config.lat_l2,
                level: HitLevel::L2,
            };
        }
        if self.l3.access(addr, write) {
            if self.l2[core].fill(addr, part, false).is_some() {
                self.writebacks.1 += 1;
            }
            if self.l1[core].fill(addr, part, write).is_some() {
                self.writebacks.0 += 1;
            }
            return AccessResult {
                latency: self.config.lat_l3,
                level: HitLevel::L3,
            };
        }
        let dram_lat = self.dram.access_line(now, addr.line().0);
        if self.l3.fill(addr, part, false).is_some() {
            self.writebacks.2 += 1;
        }
        if self.l2[core].fill(addr, part, false).is_some() {
            self.writebacks.1 += 1;
        }
        if self.l1[core].fill(addr, part, write).is_some() {
            self.writebacks.0 += 1;
        }
        AccessResult {
            latency: self.config.lat_l3 + dram_lat,
            level: HitLevel::Dram,
        }
    }

    /// Clones `core`'s private levels into a [`CoreCaches`] view an epoch
    /// worker can mutate off-thread.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn core_view(&self, core: usize) -> CoreCaches {
        CoreCaches {
            l1: self.l1[core].clone(),
            l2: self.l2[core].clone(),
            lat_l1: self.config.lat_l1,
            lat_l2: self.config.lat_l2,
            wb_l1: 0,
            wb_l2: 0,
        }
    }

    /// Splices a worker's [`CoreCaches`] view back as `core`'s private
    /// levels and folds its write-back deltas into the machine totals.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn commit_core_view(&mut self, core: usize, view: CoreCaches) {
        self.l1[core] = view.l1;
        self.l2[core] = view.l2;
        self.writebacks.0 += view.wb_l1;
        self.writebacks.1 += view.wb_l2;
    }

    /// Dirty lines written back on eviction, per level `(l1, l2, l3)`.
    ///
    /// Write-back traffic is counted but not charged to the evicting
    /// access (the write buffer drains off the critical path).
    #[must_use]
    pub fn writebacks(&self) -> (u64, u64, u64) {
        self.writebacks
    }

    /// Installs a line into `core`'s caches without charging latency —
    /// used by the wake-prefetcher (§4) to warm a thread's working set.
    pub fn warm(&mut self, core: usize, addr: PAddr, part: PartitionId) {
        self.l3.fill(addr, part, false);
        self.l2[core].fill(addr, part, false);
        self.l1[core].fill(addr, part, false);
    }

    /// Installs a line in the shared L3 only — models DDIO-style DMA
    /// deposit by a device.
    pub fn warm_l3_only(&mut self, addr: PAddr) {
        self.l3.fill(addr, PartitionId::DEFAULT, true);
    }

    /// Declares a partition quota at the shared L3 (the level §4 pins).
    pub fn set_l3_partition(&mut self, part: PartitionId, fraction: f64) {
        self.l3.set_partition_target(part, fraction);
    }

    /// Invalidates a line everywhere — models a DMA write from a device
    /// that is not cache-coherent with a stale copy, or explicit flush.
    pub fn invalidate_line(&mut self, addr: PAddr) {
        for c in &mut self.l1 {
            c.invalidate(addr);
        }
        for c in &mut self.l2 {
            c.invalidate(addr);
        }
        self.l3.invalidate(addr);
    }

    /// Whether `core`'s L1 currently holds the line (for tests/prefetch).
    #[must_use]
    pub fn l1_contains(&self, core: usize, addr: PAddr) -> bool {
        self.l1[core].contains(addr)
    }

    /// Applies a superblock's fetch stream against `core`'s L1 as one
    /// batch (see [`Cache::access_run`]): `false` — and no mutation —
    /// unless every line is L1-resident.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn l1_access_run(&mut self, core: usize, lines: &[(PAddr, u64)], n: u64) -> bool {
        self.l1[core].access_run(lines, n)
    }

    /// Applies a memory-inclusive superblock's merged fetch+data stream
    /// against `core`'s L1 as one batch (see
    /// [`Cache::access_run_mixed`]): `false` — and no mutation — unless
    /// every line is L1-resident.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn l1_access_run_mixed(
        &mut self,
        core: usize,
        lines: &[(PAddr, u64, bool)],
        n: u64,
    ) -> bool {
        self.l1[core].access_run_mixed(lines, n)
    }

    /// Per-level (hits, misses) aggregated over cores: `(l1, l2, l3)`.
    #[must_use]
    pub fn level_stats(&self) -> ((u64, u64), (u64, u64), (u64, u64)) {
        let agg = |cs: &[Cache]| {
            cs.iter().fold((0, 0), |(h, m), c| {
                let (ch, cm) = c.hit_miss();
                (h + ch, m + cm)
            })
        };
        (agg(&self.l1), agg(&self.l2), self.l3.hit_miss())
    }

    /// L3 occupancy of a partition, in lines.
    #[must_use]
    pub fn l3_occupancy(&self, part: PartitionId) -> u64 {
        self.l3.occupancy(part)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> Hierarchy {
        Hierarchy::new(2, HierarchyConfig::tiny())
    }

    #[test]
    fn cold_access_goes_to_dram() {
        let mut m = h();
        let r = m.access(
            Cycles(0),
            0,
            PAddr(0x1000),
            AccessKind::Read,
            PartitionId::DEFAULT,
        );
        assert_eq!(r.level, HitLevel::Dram);
        assert!(r.latency > Cycles(180));
    }

    #[test]
    fn second_access_hits_l1() {
        let mut m = h();
        let a = PAddr(0x1000);
        m.access(Cycles(0), 0, a, AccessKind::Read, PartitionId::DEFAULT);
        let r = m.access(Cycles(10), 0, a, AccessKind::Read, PartitionId::DEFAULT);
        assert_eq!(r.level, HitLevel::L1);
        assert_eq!(r.latency, Cycles(4));
    }

    #[test]
    fn other_core_hits_shared_l3() {
        let mut m = h();
        let a = PAddr(0x1000);
        m.access(Cycles(0), 0, a, AccessKind::Read, PartitionId::DEFAULT);
        let r = m.access(Cycles(10), 1, a, AccessKind::Read, PartitionId::DEFAULT);
        assert_eq!(r.level, HitLevel::L3);
        assert_eq!(r.latency, Cycles(42));
    }

    #[test]
    fn warm_makes_l1_hit() {
        let mut m = h();
        let a = PAddr(0x2000);
        m.warm(0, a, PartitionId::DEFAULT);
        let r = m.access(Cycles(0), 0, a, AccessKind::Read, PartitionId::DEFAULT);
        assert_eq!(r.level, HitLevel::L1);
    }

    #[test]
    fn invalidate_line_forces_refetch() {
        let mut m = h();
        let a = PAddr(0x3000);
        m.access(Cycles(0), 0, a, AccessKind::Read, PartitionId::DEFAULT);
        m.invalidate_line(a);
        let r = m.access(Cycles(10), 0, a, AccessKind::Read, PartitionId::DEFAULT);
        assert_eq!(r.level, HitLevel::Dram);
    }

    #[test]
    fn level_stats_accumulate() {
        let mut m = h();
        let a = PAddr(0x4000);
        m.access(Cycles(0), 0, a, AccessKind::Read, PartitionId::DEFAULT);
        m.access(Cycles(1), 0, a, AccessKind::Read, PartitionId::DEFAULT);
        let ((l1h, l1m), _, (l3h, l3m)) = m.level_stats();
        assert_eq!((l1h, l1m), (1, 1));
        assert_eq!((l3h, l3m), (0, 1));
    }

    #[test]
    fn l3_partition_survives_thrash_from_other_core() {
        let mut m = Hierarchy::new(1, HierarchyConfig::tiny());
        let pinned_part = PartitionId(3);
        m.set_l3_partition(pinned_part, 0.2);
        let pinned = PAddr(0);
        m.access(Cycles(0), 0, pinned, AccessKind::Read, pinned_part);
        // Thrash far more lines than the L3 holds.
        for i in 1..2000u64 {
            m.access(
                Cycles(i),
                0,
                PAddr(i * 64),
                AccessKind::Read,
                PartitionId::DEFAULT,
            );
        }
        // Pinned line must still be on-chip: next access must not be DRAM.
        let r = m.access(Cycles(9999), 0, pinned, AccessKind::Read, pinned_part);
        assert!(r.level < HitLevel::Dram, "pinned line went off-chip");
    }
}

#[cfg(test)]
mod writeback_tests {
    use super::*;

    #[test]
    fn dirty_evictions_are_counted() {
        let mut m = Hierarchy::new(1, HierarchyConfig::tiny());
        // Dirty many lines mapping beyond L1 capacity (1 KiB = 16 lines).
        for i in 0..64u64 {
            m.access(
                Cycles(i),
                0,
                PAddr(i * 64),
                AccessKind::Write,
                PartitionId::DEFAULT,
            );
        }
        let (l1_wb, _, _) = m.writebacks();
        assert!(l1_wb > 0, "dirty L1 evictions must be counted");
    }

    #[test]
    fn clean_traffic_produces_no_writebacks() {
        let mut m = Hierarchy::new(1, HierarchyConfig::tiny());
        for i in 0..64u64 {
            m.access(
                Cycles(i),
                0,
                PAddr(i * 64),
                AccessKind::Read,
                PartitionId::DEFAULT,
            );
        }
        assert_eq!(m.writebacks(), (0, 0, 0));
    }
}

//! The generalized monitor filter (§3.1, §4 "Generalized monitor-mwait").
//!
//! The paper requires `monitor`/`mwait` to observe **any write to any
//! address** — CPU stores, DMA writes from devices, MMIO register updates —
//! from **any privilege level**, with one thread able to monitor multiple
//! locations. This module models the hardware structure that makes that
//! possible: a filter consulted on every store, mapping the written range
//! to the set of waiting hardware threads to wake.
//!
//! Two implementations let experiment F12 compare design points:
//!
//! * [`CamFilter`] — a fully-associative array (CAM). Exact byte-range
//!   matching, constant lookup time, but bounded capacity: arming beyond
//!   capacity fails, forcing software fallback.
//! * [`HashFilter`] — banked hash table indexed by cache line. Effectively
//!   unbounded, but line-granular: a store to an unwatched byte of a
//!   watched line produces a *false wakeup* (the woken thread re-checks
//!   its condition and re-waits, exactly like x86 `mwait` spurious
//!   wakeups), and bucket collisions add lookup latency.

use std::collections::HashMap;

use switchless_sim::time::Cycles;

use crate::addr::{lines_covering, PAddr};

/// Identifies the waiting entity (in practice a hardware thread / ptid).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WatchId(pub u64);

/// A wakeup produced by a store hitting the filter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WakeEvent {
    /// The watcher to wake.
    pub watcher: WatchId,
    /// `true` if the store byte-range actually overlapped the armed
    /// range; `false` is a line-granularity false wakeup.
    pub exact: bool,
}

/// Error arming a watch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MonitorError {
    /// The filter is out of entries (CAM capacity exhausted).
    CapacityExhausted,
}

impl core::fmt::Display for MonitorError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MonitorError::CapacityExhausted => write!(f, "monitor filter capacity exhausted"),
        }
    }
}

impl std::error::Error for MonitorError {}

/// Common interface of monitor-filter implementations.
pub trait MonitorFilter {
    /// Arms a watch on the byte range `[addr, addr + len)`.
    ///
    /// One watcher may arm multiple ranges (§3.1: "a hardware thread can
    /// monitor multiple memory locations").
    fn arm(&mut self, watcher: WatchId, addr: PAddr, len: u64) -> Result<(), MonitorError>;

    /// Removes every watch held by `watcher` (on wake or `stop`).
    fn disarm_all(&mut self, watcher: WatchId);

    /// Reports a store; pushes wakeups into `out` and returns the modeled
    /// lookup cost the store incurs.
    fn on_store(&mut self, addr: PAddr, len: u64, out: &mut Vec<WakeEvent>) -> Cycles;

    /// Number of armed (watcher, range) entries.
    fn armed_len(&self) -> usize;
}

fn ranges_overlap(a_start: u64, a_len: u64, b_start: u64, b_len: u64) -> bool {
    let a_end = a_start.saturating_add(a_len);
    let b_end = b_start.saturating_add(b_len);
    a_start < b_end && b_start < a_end
}

// ---------------------------------------------------------------------------
// CAM design
// ---------------------------------------------------------------------------

/// Fully-associative monitor filter with exact matching.
#[derive(Clone, Debug)]
pub struct CamFilter {
    entries: Vec<(WatchId, PAddr, u64)>,
    capacity: usize,
    lookup_cost: Cycles,
    stores_checked: u64,
}

impl CamFilter {
    /// Creates a CAM filter holding up to `capacity` armed ranges.
    #[must_use]
    pub fn new(capacity: usize) -> CamFilter {
        CamFilter {
            entries: Vec::with_capacity(capacity),
            capacity,
            // A CAM compares all entries in parallel: ~1 cycle.
            lookup_cost: Cycles(1),
            stores_checked: 0,
        }
    }

    /// Number of stores that have consulted the filter.
    #[must_use]
    pub fn stores_checked(&self) -> u64 {
        self.stores_checked
    }
}

impl MonitorFilter for CamFilter {
    fn arm(&mut self, watcher: WatchId, addr: PAddr, len: u64) -> Result<(), MonitorError> {
        let len = len.max(1);
        // Re-arming an identical range is idempotent (x86 `monitor`
        // semantics): software loops that arm before every condition
        // check must not leak filter entries.
        if self.entries.contains(&(watcher, addr, len)) {
            return Ok(());
        }
        if self.entries.len() >= self.capacity {
            return Err(MonitorError::CapacityExhausted);
        }
        self.entries.push((watcher, addr, len));
        Ok(())
    }

    fn disarm_all(&mut self, watcher: WatchId) {
        self.entries.retain(|(w, _, _)| *w != watcher);
    }

    fn on_store(&mut self, addr: PAddr, len: u64, out: &mut Vec<WakeEvent>) -> Cycles {
        self.stores_checked += 1;
        let len = len.max(1);
        for &(w, a, l) in &self.entries {
            if ranges_overlap(addr.0, len, a.0, l) {
                out.push(WakeEvent {
                    watcher: w,
                    exact: true,
                });
            }
        }
        self.lookup_cost
    }

    fn armed_len(&self) -> usize {
        self.entries.len()
    }
}

// ---------------------------------------------------------------------------
// Hashed-bank design
// ---------------------------------------------------------------------------

/// Line-granular hashed monitor filter.
#[derive(Clone, Debug)]
pub struct HashFilter {
    /// line address -> armed entries on that line.
    lines: HashMap<u64, Vec<(WatchId, PAddr, u64)>>,
    base_cost: Cycles,
    /// Additional cost per colliding entry scanned in the bucket.
    per_entry_cost: Cycles,
    armed: usize,
    false_wakes: u64,
}

impl HashFilter {
    /// Creates an empty hashed filter.
    #[must_use]
    pub fn new() -> HashFilter {
        HashFilter {
            lines: HashMap::new(),
            base_cost: Cycles(2),
            per_entry_cost: Cycles(1),
            armed: 0,
            false_wakes: 0,
        }
    }

    /// Number of line-granularity false wakeups produced so far.
    #[must_use]
    pub fn false_wakes(&self) -> u64 {
        self.false_wakes
    }
}

impl Default for HashFilter {
    fn default() -> HashFilter {
        HashFilter::new()
    }
}

impl MonitorFilter for HashFilter {
    fn arm(&mut self, watcher: WatchId, addr: PAddr, len: u64) -> Result<(), MonitorError> {
        let len = len.max(1);
        for line in lines_covering(addr, len) {
            let bucket = self.lines.entry(line.0).or_default();
            // Idempotent re-arm (see CamFilter::arm).
            if bucket.contains(&(watcher, addr, len)) {
                continue;
            }
            bucket.push((watcher, addr, len));
            self.armed += 1;
        }
        Ok(())
    }

    fn disarm_all(&mut self, watcher: WatchId) {
        let mut removed = 0usize;
        self.lines.retain(|_, v| {
            let before = v.len();
            v.retain(|(w, _, _)| *w != watcher);
            removed += before - v.len();
            !v.is_empty()
        });
        self.armed -= removed;
    }

    fn on_store(&mut self, addr: PAddr, len: u64, out: &mut Vec<WakeEvent>) -> Cycles {
        let len = len.max(1);
        let mut scanned = 0u64;
        let before = out.len();
        for line in lines_covering(addr, len) {
            if let Some(entries) = self.lines.get(&line.0) {
                for &(w, a, l) in entries {
                    scanned += 1;
                    let exact = ranges_overlap(addr.0, len, a.0, l);
                    if !exact {
                        self.false_wakes += 1;
                    }
                    // Line-granular hardware wakes on any write to the
                    // line; software re-checks the condition.
                    if !out[before..].iter().any(|e| e.watcher == w) {
                        out.push(WakeEvent { watcher: w, exact });
                    }
                }
            }
        }
        self.base_cost + Cycles(self.per_entry_cost.0 * scanned)
    }

    fn armed_len(&self) -> usize {
        self.armed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wakes(f: &mut dyn MonitorFilter, addr: PAddr, len: u64) -> Vec<WakeEvent> {
        let mut out = Vec::new();
        f.on_store(addr, len, &mut out);
        out
    }

    #[test]
    fn cam_exact_hit() {
        let mut f = CamFilter::new(8);
        f.arm(WatchId(1), PAddr(0x100), 8).unwrap();
        let w = wakes(&mut f, PAddr(0x100), 8);
        assert_eq!(
            w,
            vec![WakeEvent {
                watcher: WatchId(1),
                exact: true
            }]
        );
    }

    #[test]
    fn cam_non_overlapping_store_is_silent() {
        let mut f = CamFilter::new(8);
        f.arm(WatchId(1), PAddr(0x100), 8).unwrap();
        assert!(wakes(&mut f, PAddr(0x108), 8).is_empty());
        assert!(wakes(&mut f, PAddr(0xf8), 8).is_empty());
    }

    #[test]
    fn cam_partial_overlap_wakes() {
        let mut f = CamFilter::new(8);
        f.arm(WatchId(1), PAddr(0x100), 8).unwrap();
        assert_eq!(wakes(&mut f, PAddr(0x104), 8).len(), 1);
    }

    #[test]
    fn cam_capacity_enforced() {
        let mut f = CamFilter::new(2);
        f.arm(WatchId(1), PAddr(0), 1).unwrap();
        f.arm(WatchId(2), PAddr(8), 1).unwrap();
        assert_eq!(
            f.arm(WatchId(3), PAddr(16), 1),
            Err(MonitorError::CapacityExhausted)
        );
        // Disarming frees space.
        f.disarm_all(WatchId(1));
        assert!(f.arm(WatchId(3), PAddr(16), 1).is_ok());
    }

    #[test]
    fn cam_multiple_watchers_same_address() {
        let mut f = CamFilter::new(8);
        f.arm(WatchId(1), PAddr(0x40), 8).unwrap();
        f.arm(WatchId(2), PAddr(0x40), 8).unwrap();
        let w = wakes(&mut f, PAddr(0x40), 1);
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn cam_one_watcher_multiple_ranges() {
        let mut f = CamFilter::new(8);
        f.arm(WatchId(1), PAddr(0x40), 8).unwrap();
        f.arm(WatchId(1), PAddr(0x4000), 8).unwrap();
        assert_eq!(f.armed_len(), 2);
        assert_eq!(wakes(&mut f, PAddr(0x4000), 4).len(), 1);
        f.disarm_all(WatchId(1));
        assert_eq!(f.armed_len(), 0);
    }

    #[test]
    fn hash_exact_and_false_wakes() {
        let mut f = HashFilter::new();
        // Watch bytes [0x100, 0x108); store to same line but outside range.
        f.arm(WatchId(1), PAddr(0x100), 8).unwrap();
        let w = wakes(&mut f, PAddr(0x110), 4);
        assert_eq!(w.len(), 1, "line-granular filter wakes");
        assert!(!w[0].exact, "but it is a false wakeup");
        assert_eq!(f.false_wakes(), 1);
        let w = wakes(&mut f, PAddr(0x100), 4);
        assert!(w[0].exact);
    }

    #[test]
    fn hash_cross_line_range() {
        let mut f = HashFilter::new();
        // Range spans two lines: watch entries on both.
        f.arm(WatchId(9), PAddr(0x7c), 16).unwrap();
        assert_eq!(f.armed_len(), 2);
        assert_eq!(wakes(&mut f, PAddr(0x80), 1).len(), 1);
        assert_eq!(wakes(&mut f, PAddr(0x7c), 1).len(), 1);
    }

    #[test]
    fn hash_no_duplicate_wake_for_same_store() {
        let mut f = HashFilter::new();
        f.arm(WatchId(1), PAddr(0x7c), 16).unwrap();
        // A store spanning both watched lines must wake the watcher once.
        let w = wakes(&mut f, PAddr(0x7e), 8);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn hash_lookup_cost_grows_with_collisions() {
        let mut f = HashFilter::new();
        let mut out = Vec::new();
        let base = f.on_store(PAddr(0x40), 1, &mut out);
        for i in 0..10 {
            f.arm(WatchId(i), PAddr(0x40), 4).unwrap();
        }
        out.clear();
        let loaded = f.on_store(PAddr(0x40), 1, &mut out);
        assert!(loaded > base, "collisions must add latency");
    }

    #[test]
    fn hash_disarm_removes_all_lines() {
        let mut f = HashFilter::new();
        f.arm(WatchId(1), PAddr(0x7c), 16).unwrap();
        f.arm(WatchId(2), PAddr(0x7c), 4).unwrap();
        f.disarm_all(WatchId(1));
        assert_eq!(f.armed_len(), 1);
        let w = wakes(&mut f, PAddr(0x7c), 2);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].watcher, WatchId(2));
    }

    #[test]
    fn rearming_same_range_is_idempotent() {
        // Regression: a wait loop arms before every condition check; if
        // it takes the serve path (no mwait/disarm), re-arming must not
        // leak entries toward CAM exhaustion.
        let mut cam = CamFilter::new(4);
        for _ in 0..100 {
            cam.arm(WatchId(1), PAddr(0x40), 8).unwrap();
        }
        assert_eq!(cam.armed_len(), 1);
        let mut hash = HashFilter::new();
        for _ in 0..100 {
            hash.arm(WatchId(1), PAddr(0x40), 8).unwrap();
        }
        assert_eq!(hash.armed_len(), 1);
        // A *different* range still adds.
        cam.arm(WatchId(1), PAddr(0x80), 8).unwrap();
        assert_eq!(cam.armed_len(), 2);
    }

    #[test]
    fn zero_len_store_treated_as_one_byte() {
        let mut f = CamFilter::new(4);
        f.arm(WatchId(1), PAddr(0x100), 0).unwrap();
        assert_eq!(wakes(&mut f, PAddr(0x100), 0).len(), 1);
    }
}

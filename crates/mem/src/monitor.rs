//! The generalized monitor filter (§3.1, §4 "Generalized monitor-mwait").
//!
//! The paper requires `monitor`/`mwait` to observe **any write to any
//! address** — CPU stores, DMA writes from devices, MMIO register updates —
//! from **any privilege level**, with one thread able to monitor multiple
//! locations. This module models the hardware structure that makes that
//! possible: a filter consulted on every store, mapping the written range
//! to the set of waiting hardware threads to wake.
//!
//! Two implementations let experiment F12 compare design points:
//!
//! * [`CamFilter`] — a fully-associative array (CAM). Exact byte-range
//!   matching, constant lookup time, but bounded capacity: arming beyond
//!   capacity fails, forcing software fallback.
//! * [`HashFilter`] — banked hash table indexed by cache line. Effectively
//!   unbounded, but line-granular: a store to an unwatched byte of a
//!   watched line produces a *false wakeup* (the woken thread re-checks
//!   its condition and re-waits, exactly like x86 `mwait` spurious
//!   wakeups), and bucket collisions add lookup latency.

use switchless_sim::hash::FxHashMap;
use switchless_sim::time::Cycles;

use crate::addr::{lines_covering, PAddr};

/// Identifies the waiting entity (in practice a hardware thread / ptid).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WatchId(pub u64);

/// A wakeup produced by a store hitting the filter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WakeEvent {
    /// The watcher to wake.
    pub watcher: WatchId,
    /// `true` if the store byte-range actually overlapped the armed
    /// range; `false` is a line-granularity false wakeup.
    pub exact: bool,
}

/// Error arming a watch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MonitorError {
    /// The filter is out of entries (CAM capacity exhausted).
    CapacityExhausted,
}

impl core::fmt::Display for MonitorError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MonitorError::CapacityExhausted => write!(f, "monitor filter capacity exhausted"),
        }
    }
}

impl std::error::Error for MonitorError {}

/// Common interface of monitor-filter implementations.
///
/// `Send + Sync` because the shard engine's epoch workers consult the
/// filter read-only (via [`MonitorFilter::would_wake`]) from worker
/// threads while the owning machine is parked at the epoch barrier.
pub trait MonitorFilter: Send + Sync {
    /// Arms a watch on the byte range `[addr, addr + len)`.
    ///
    /// One watcher may arm multiple ranges (§3.1: "a hardware thread can
    /// monitor multiple memory locations").
    fn arm(&mut self, watcher: WatchId, addr: PAddr, len: u64) -> Result<(), MonitorError>;

    /// Removes every watch held by `watcher` (on wake or `stop`).
    fn disarm_all(&mut self, watcher: WatchId);

    /// Reports a store; pushes wakeups into `out` and returns the modeled
    /// lookup cost the store incurs.
    fn on_store(&mut self, addr: PAddr, len: u64, out: &mut Vec<WakeEvent>) -> Cycles;

    /// Number of armed (watcher, range) entries.
    fn armed_len(&self) -> usize;

    /// Whether `watcher` holds at least one armed watch.
    ///
    /// Used by the machine's invariant checker to prove no-lost-wakeup: a
    /// parked thread whose filter entries have vanished can never be woken
    /// by a store again.
    fn is_armed(&self, watcher: WatchId) -> bool;

    /// Whether a store to `[addr, addr + len)` would produce at least one
    /// wakeup (exact or false), without performing it. Pure: no statistics
    /// move, so epoch workers may consult it through a shared reference.
    fn would_wake(&self, addr: PAddr, len: u64) -> bool;

    /// The cost [`MonitorFilter::on_store`] charges a store that wakes
    /// nobody (`would_wake` false). Epoch workers charge this locally and
    /// report the store count at commit via
    /// [`MonitorFilter::note_quiet_stores`].
    fn store_lookup_cost(&self) -> Cycles;

    /// Accounts `count` stores that were checked off-thread and woke
    /// nobody, so filter statistics match the serial engine's.
    fn note_quiet_stores(&mut self, count: u64);
}

fn ranges_overlap(a_start: u64, a_len: u64, b_start: u64, b_len: u64) -> bool {
    let a_end = a_start.saturating_add(a_len);
    let b_end = b_start.saturating_add(b_len);
    a_start < b_end && b_start < a_end
}

// ---------------------------------------------------------------------------
// CAM design
// ---------------------------------------------------------------------------

/// Armed ranges covering more lines than this bypass the line index and
/// live on a linearly-scanned overflow list (indexing a multi-megabyte
/// watch line-by-line would cost more than it saves).
const INDEX_MAX_LINES: u64 = 16;

fn covers_too_many_lines(addr: PAddr, len: u64) -> bool {
    let last = addr.0.saturating_add(len - 1);
    (last >> 6) - (addr.0 >> 6) + 1 > INDEX_MAX_LINES
}

/// Fully-associative monitor filter with exact matching.
///
/// The *functional* lookup is line-indexed so the host cost of a store is
/// O(armed-on-stored-lines), not O(all armed entries); the *modeled*
/// cycle cost is still the constant-time CAM compare (`Cycles(1)`), as a
/// real CAM compares all entries in parallel. Entry ids grow in arm
/// order and candidate ids are emitted sorted, so wake order is exactly
/// the insertion order the pre-index linear scan produced — simulated
/// behaviour is bit-identical.
#[derive(Clone, Debug)]
pub struct CamFilter {
    /// id -> armed range; ids are never reused.
    entries: FxHashMap<u64, (WatchId, PAddr, u64)>,
    /// line address -> ids of indexable entries touching that line.
    by_line: FxHashMap<u64, Vec<u64>>,
    /// ids of over-wide ranges, always scanned.
    large: Vec<u64>,
    /// watcher -> its entry ids (for O(own-entries) disarm).
    by_watcher: FxHashMap<WatchId, Vec<u64>>,
    next_id: u64,
    capacity: usize,
    lookup_cost: Cycles,
    stores_checked: u64,
    /// Candidate-id scratch reused across stores (allocation-free path).
    scratch: Vec<u64>,
}

impl CamFilter {
    /// Creates a CAM filter holding up to `capacity` armed ranges.
    #[must_use]
    pub fn new(capacity: usize) -> CamFilter {
        CamFilter {
            entries: FxHashMap::default(),
            by_line: FxHashMap::default(),
            large: Vec::new(),
            by_watcher: FxHashMap::default(),
            next_id: 0,
            capacity,
            // A CAM compares all entries in parallel: ~1 cycle.
            lookup_cost: Cycles(1),
            stores_checked: 0,
            scratch: Vec::new(),
        }
    }

    /// Number of stores that have consulted the filter.
    #[must_use]
    pub fn stores_checked(&self) -> u64 {
        self.stores_checked
    }
}

impl MonitorFilter for CamFilter {
    fn arm(&mut self, watcher: WatchId, addr: PAddr, len: u64) -> Result<(), MonitorError> {
        let len = len.max(1);
        // Re-arming an identical range is idempotent (x86 `monitor`
        // semantics): software loops that arm before every condition
        // check must not leak filter entries.
        if let Some(ids) = self.by_watcher.get(&watcher) {
            if ids
                .iter()
                .any(|id| self.entries[id] == (watcher, addr, len))
            {
                return Ok(());
            }
        }
        if self.entries.len() >= self.capacity {
            return Err(MonitorError::CapacityExhausted);
        }
        let id = self.next_id;
        self.next_id += 1;
        self.entries.insert(id, (watcher, addr, len));
        self.by_watcher.entry(watcher).or_default().push(id);
        if covers_too_many_lines(addr, len) {
            self.large.push(id);
        } else {
            for line in lines_covering(addr, len) {
                self.by_line.entry(line.0).or_default().push(id);
            }
        }
        Ok(())
    }

    fn disarm_all(&mut self, watcher: WatchId) {
        let Some(ids) = self.by_watcher.remove(&watcher) else {
            return;
        };
        for id in ids {
            let Some((_, addr, len)) = self.entries.remove(&id) else {
                continue;
            };
            if covers_too_many_lines(addr, len) {
                self.large.retain(|&x| x != id);
            } else {
                for line in lines_covering(addr, len) {
                    if let Some(v) = self.by_line.get_mut(&line.0) {
                        v.retain(|&x| x != id);
                        if v.is_empty() {
                            self.by_line.remove(&line.0);
                        }
                    }
                }
            }
        }
    }

    fn on_store(&mut self, addr: PAddr, len: u64, out: &mut Vec<WakeEvent>) -> Cycles {
        self.stores_checked += 1;
        let len = len.max(1);
        if self.entries.is_empty() {
            return self.lookup_cost;
        }
        let mut cand = core::mem::take(&mut self.scratch);
        cand.clear();
        let first = addr.line();
        if PAddr(addr.0 + (len - 1)).line() == first {
            // Single-line store: one index probe, no line iterator.
            if let Some(ids) = self.by_line.get(&first.0) {
                cand.extend_from_slice(ids);
            }
        } else {
            for line in lines_covering(addr, len) {
                if let Some(ids) = self.by_line.get(&line.0) {
                    cand.extend_from_slice(ids);
                }
            }
        }
        cand.extend_from_slice(&self.large);
        // Any armed range overlapping the store shares a stored byte's
        // line with it, so every overlap candidate is collected above;
        // sorted ids reproduce arm order for the emitted wakes.
        cand.sort_unstable();
        cand.dedup();
        for &id in &cand {
            let (w, a, l) = self.entries[&id];
            if ranges_overlap(addr.0, len, a.0, l) {
                out.push(WakeEvent {
                    watcher: w,
                    exact: true,
                });
            }
        }
        self.scratch = cand;
        self.lookup_cost
    }

    fn armed_len(&self) -> usize {
        self.entries.len()
    }

    fn is_armed(&self, watcher: WatchId) -> bool {
        self.by_watcher
            .get(&watcher)
            .is_some_and(|ids| !ids.is_empty())
    }

    fn would_wake(&self, addr: PAddr, len: u64) -> bool {
        let len = len.max(1);
        if self.entries.is_empty() {
            return false;
        }
        let hit = |id: &u64| {
            let (_, a, l) = self.entries[id];
            ranges_overlap(addr.0, len, a.0, l)
        };
        lines_covering(addr, len).any(|line| {
            self.by_line
                .get(&line.0)
                .is_some_and(|ids| ids.iter().any(hit))
        }) || self.large.iter().any(hit)
    }

    fn store_lookup_cost(&self) -> Cycles {
        self.lookup_cost
    }

    fn note_quiet_stores(&mut self, count: u64) {
        self.stores_checked += count;
    }
}

// ---------------------------------------------------------------------------
// Hashed-bank design
// ---------------------------------------------------------------------------

/// Line-granular hashed monitor filter.
#[derive(Clone, Debug)]
pub struct HashFilter {
    /// line address -> armed entries on that line.
    lines: FxHashMap<u64, Vec<(WatchId, PAddr, u64)>>,
    /// watcher -> lines it has entries on, so `disarm_all` touches only
    /// those buckets instead of sweeping the whole table (the sweep was
    /// O(total armed lines) on every wake).
    watcher_lines: FxHashMap<WatchId, Vec<u64>>,
    base_cost: Cycles,
    /// Additional cost per colliding entry scanned in the bucket.
    per_entry_cost: Cycles,
    armed: usize,
    false_wakes: u64,
}

impl HashFilter {
    /// Creates an empty hashed filter.
    #[must_use]
    pub fn new() -> HashFilter {
        HashFilter {
            lines: FxHashMap::default(),
            watcher_lines: FxHashMap::default(),
            base_cost: Cycles(2),
            per_entry_cost: Cycles(1),
            armed: 0,
            false_wakes: 0,
        }
    }

    /// Number of line-granularity false wakeups produced so far.
    #[must_use]
    pub fn false_wakes(&self) -> u64 {
        self.false_wakes
    }

    /// Scans one line's bucket for a store to `[addr, addr + len)`,
    /// pushing deduplicated wakes; returns the number of entries scanned.
    #[inline]
    fn scan_line(
        &mut self,
        line: u64,
        addr: PAddr,
        len: u64,
        before: usize,
        out: &mut Vec<WakeEvent>,
    ) -> u64 {
        let Some(entries) = self.lines.get(&line) else {
            return 0;
        };
        let mut false_wakes = 0u64;
        for &(w, a, l) in entries {
            let exact = ranges_overlap(addr.0, len, a.0, l);
            if !exact {
                false_wakes += 1;
            }
            // Line-granular hardware wakes on any write to the line;
            // software re-checks the condition.
            if !out[before..].iter().any(|e| e.watcher == w) {
                out.push(WakeEvent { watcher: w, exact });
            }
        }
        let scanned = entries.len() as u64;
        self.false_wakes += false_wakes;
        scanned
    }
}

impl Default for HashFilter {
    fn default() -> HashFilter {
        HashFilter::new()
    }
}

impl MonitorFilter for HashFilter {
    fn arm(&mut self, watcher: WatchId, addr: PAddr, len: u64) -> Result<(), MonitorError> {
        let len = len.max(1);
        for line in lines_covering(addr, len) {
            let bucket = self.lines.entry(line.0).or_default();
            // Idempotent re-arm (see CamFilter::arm).
            if bucket.contains(&(watcher, addr, len)) {
                continue;
            }
            bucket.push((watcher, addr, len));
            self.armed += 1;
            // `watcher_lines` may record a line twice when one watcher
            // arms two ranges on it; disarm handles that (second visit
            // finds nothing to remove).
            self.watcher_lines.entry(watcher).or_default().push(line.0);
        }
        Ok(())
    }

    fn disarm_all(&mut self, watcher: WatchId) {
        let Some(lines) = self.watcher_lines.remove(&watcher) else {
            return;
        };
        let mut removed = 0usize;
        for line in lines {
            if let Some(v) = self.lines.get_mut(&line) {
                let before = v.len();
                v.retain(|(w, _, _)| *w != watcher);
                removed += before - v.len();
                if v.is_empty() {
                    self.lines.remove(&line);
                }
            }
        }
        self.armed -= removed;
    }

    fn on_store(&mut self, addr: PAddr, len: u64, out: &mut Vec<WakeEvent>) -> Cycles {
        let len = len.max(1);
        let before = out.len();
        let first = addr.line();
        // Single-line stores — the overwhelming majority on real store
        // streams — skip the line-iterator machinery: one probe, one scan.
        let scanned = if PAddr(addr.0 + (len - 1)).line() == first {
            self.scan_line(first.0, addr, len, before, out)
        } else {
            let mut scanned = 0u64;
            for line in lines_covering(addr, len) {
                scanned += self.scan_line(line.0, addr, len, before, out);
            }
            scanned
        };
        self.base_cost + Cycles(self.per_entry_cost.0 * scanned)
    }

    fn armed_len(&self) -> usize {
        self.armed
    }

    fn is_armed(&self, watcher: WatchId) -> bool {
        self.watcher_lines
            .get(&watcher)
            .is_some_and(|lines| !lines.is_empty())
    }

    fn would_wake(&self, addr: PAddr, len: u64) -> bool {
        // Line-granular: any armed entry on a stored line wakes, even if
        // the byte ranges are disjoint (a false wakeup is still a wakeup).
        let len = len.max(1);
        let first = addr.line();
        if PAddr(addr.0 + (len - 1)).line() == first {
            return self.lines.contains_key(&first.0);
        }
        lines_covering(addr, len).any(|line| self.lines.contains_key(&line.0))
    }

    fn store_lookup_cost(&self) -> Cycles {
        // Empty buckets are removed on disarm, so a store that wakes
        // nobody scans zero entries and pays only the base probe.
        self.base_cost
    }

    fn note_quiet_stores(&mut self, _count: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wakes(f: &mut dyn MonitorFilter, addr: PAddr, len: u64) -> Vec<WakeEvent> {
        let mut out = Vec::new();
        f.on_store(addr, len, &mut out);
        out
    }

    #[test]
    fn cam_exact_hit() {
        let mut f = CamFilter::new(8);
        f.arm(WatchId(1), PAddr(0x100), 8).unwrap();
        let w = wakes(&mut f, PAddr(0x100), 8);
        assert_eq!(
            w,
            vec![WakeEvent {
                watcher: WatchId(1),
                exact: true
            }]
        );
    }

    #[test]
    fn cam_non_overlapping_store_is_silent() {
        let mut f = CamFilter::new(8);
        f.arm(WatchId(1), PAddr(0x100), 8).unwrap();
        assert!(wakes(&mut f, PAddr(0x108), 8).is_empty());
        assert!(wakes(&mut f, PAddr(0xf8), 8).is_empty());
    }

    #[test]
    fn cam_partial_overlap_wakes() {
        let mut f = CamFilter::new(8);
        f.arm(WatchId(1), PAddr(0x100), 8).unwrap();
        assert_eq!(wakes(&mut f, PAddr(0x104), 8).len(), 1);
    }

    #[test]
    fn cam_capacity_enforced() {
        let mut f = CamFilter::new(2);
        f.arm(WatchId(1), PAddr(0), 1).unwrap();
        f.arm(WatchId(2), PAddr(8), 1).unwrap();
        assert_eq!(
            f.arm(WatchId(3), PAddr(16), 1),
            Err(MonitorError::CapacityExhausted)
        );
        // Disarming frees space.
        f.disarm_all(WatchId(1));
        assert!(f.arm(WatchId(3), PAddr(16), 1).is_ok());
    }

    #[test]
    fn cam_multiple_watchers_same_address() {
        let mut f = CamFilter::new(8);
        f.arm(WatchId(1), PAddr(0x40), 8).unwrap();
        f.arm(WatchId(2), PAddr(0x40), 8).unwrap();
        let w = wakes(&mut f, PAddr(0x40), 1);
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn cam_one_watcher_multiple_ranges() {
        let mut f = CamFilter::new(8);
        f.arm(WatchId(1), PAddr(0x40), 8).unwrap();
        f.arm(WatchId(1), PAddr(0x4000), 8).unwrap();
        assert_eq!(f.armed_len(), 2);
        assert_eq!(wakes(&mut f, PAddr(0x4000), 4).len(), 1);
        f.disarm_all(WatchId(1));
        assert_eq!(f.armed_len(), 0);
    }

    #[test]
    fn hash_exact_and_false_wakes() {
        let mut f = HashFilter::new();
        // Watch bytes [0x100, 0x108); store to same line but outside range.
        f.arm(WatchId(1), PAddr(0x100), 8).unwrap();
        let w = wakes(&mut f, PAddr(0x110), 4);
        assert_eq!(w.len(), 1, "line-granular filter wakes");
        assert!(!w[0].exact, "but it is a false wakeup");
        assert_eq!(f.false_wakes(), 1);
        let w = wakes(&mut f, PAddr(0x100), 4);
        assert!(w[0].exact);
    }

    #[test]
    fn hash_cross_line_range() {
        let mut f = HashFilter::new();
        // Range spans two lines: watch entries on both.
        f.arm(WatchId(9), PAddr(0x7c), 16).unwrap();
        assert_eq!(f.armed_len(), 2);
        assert_eq!(wakes(&mut f, PAddr(0x80), 1).len(), 1);
        assert_eq!(wakes(&mut f, PAddr(0x7c), 1).len(), 1);
    }

    #[test]
    fn hash_no_duplicate_wake_for_same_store() {
        let mut f = HashFilter::new();
        f.arm(WatchId(1), PAddr(0x7c), 16).unwrap();
        // A store spanning both watched lines must wake the watcher once.
        let w = wakes(&mut f, PAddr(0x7e), 8);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn hash_lookup_cost_grows_with_collisions() {
        let mut f = HashFilter::new();
        let mut out = Vec::new();
        let base = f.on_store(PAddr(0x40), 1, &mut out);
        for i in 0..10 {
            f.arm(WatchId(i), PAddr(0x40), 4).unwrap();
        }
        out.clear();
        let loaded = f.on_store(PAddr(0x40), 1, &mut out);
        assert!(loaded > base, "collisions must add latency");
    }

    #[test]
    fn hash_disarm_removes_all_lines() {
        let mut f = HashFilter::new();
        f.arm(WatchId(1), PAddr(0x7c), 16).unwrap();
        f.arm(WatchId(2), PAddr(0x7c), 4).unwrap();
        f.disarm_all(WatchId(1));
        assert_eq!(f.armed_len(), 1);
        let w = wakes(&mut f, PAddr(0x7c), 2);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].watcher, WatchId(2));
    }

    #[test]
    fn rearming_same_range_is_idempotent() {
        // Regression: a wait loop arms before every condition check; if
        // it takes the serve path (no mwait/disarm), re-arming must not
        // leak entries toward CAM exhaustion.
        let mut cam = CamFilter::new(4);
        for _ in 0..100 {
            cam.arm(WatchId(1), PAddr(0x40), 8).unwrap();
        }
        assert_eq!(cam.armed_len(), 1);
        let mut hash = HashFilter::new();
        for _ in 0..100 {
            hash.arm(WatchId(1), PAddr(0x40), 8).unwrap();
        }
        assert_eq!(hash.armed_len(), 1);
        // A *different* range still adds.
        cam.arm(WatchId(1), PAddr(0x80), 8).unwrap();
        assert_eq!(cam.armed_len(), 2);
    }

    #[test]
    fn zero_len_store_treated_as_one_byte() {
        let mut f = CamFilter::new(4);
        f.arm(WatchId(1), PAddr(0x100), 0).unwrap();
        assert_eq!(wakes(&mut f, PAddr(0x100), 0).len(), 1);
    }

    #[test]
    fn cam_wake_order_is_arm_order() {
        let mut f = CamFilter::new(8);
        // Arm in a deliberately non-address order; wakes must come back
        // in arm order (what the pre-index linear scan produced).
        f.arm(WatchId(5), PAddr(0x108), 8).unwrap();
        f.arm(WatchId(2), PAddr(0x100), 8).unwrap();
        f.arm(WatchId(9), PAddr(0x104), 8).unwrap();
        let w = wakes(&mut f, PAddr(0x100), 16);
        let order: Vec<u64> = w.iter().map(|e| e.watcher.0).collect();
        assert_eq!(order, vec![5, 2, 9]);
    }

    #[test]
    fn cam_large_range_still_matches() {
        let mut f = CamFilter::new(8);
        // 1 MiB watch: far past INDEX_MAX_LINES, takes the overflow path.
        f.arm(WatchId(1), PAddr(0x10_0000), 1 << 20).unwrap();
        assert_eq!(wakes(&mut f, PAddr(0x18_0000), 8).len(), 1);
        assert!(wakes(&mut f, PAddr(0x20_0000), 8).is_empty());
        f.disarm_all(WatchId(1));
        assert_eq!(f.armed_len(), 0);
        assert!(wakes(&mut f, PAddr(0x18_0000), 8).is_empty());
    }
}

/// The pre-index linear-scan filters, kept verbatim as the behavioural
/// oracle: the property tests below drive random arm/disarm/store
/// sequences through both implementations and require identical wake
/// sets (order included), cycle costs, and armed counts.
#[cfg(test)]
mod reference {
    use super::*;

    pub struct RefCam {
        entries: Vec<(WatchId, PAddr, u64)>,
        capacity: usize,
    }

    impl RefCam {
        pub fn new(capacity: usize) -> RefCam {
            RefCam {
                entries: Vec::new(),
                capacity,
            }
        }

        pub fn arm(&mut self, watcher: WatchId, addr: PAddr, len: u64) -> Result<(), MonitorError> {
            let len = len.max(1);
            if self.entries.contains(&(watcher, addr, len)) {
                return Ok(());
            }
            if self.entries.len() >= self.capacity {
                return Err(MonitorError::CapacityExhausted);
            }
            self.entries.push((watcher, addr, len));
            Ok(())
        }

        pub fn disarm_all(&mut self, watcher: WatchId) {
            self.entries.retain(|(w, _, _)| *w != watcher);
        }

        pub fn on_store(&mut self, addr: PAddr, len: u64, out: &mut Vec<WakeEvent>) -> Cycles {
            let len = len.max(1);
            for &(w, a, l) in &self.entries {
                if ranges_overlap(addr.0, len, a.0, l) {
                    out.push(WakeEvent {
                        watcher: w,
                        exact: true,
                    });
                }
            }
            Cycles(1)
        }

        pub fn armed_len(&self) -> usize {
            self.entries.len()
        }
    }

    pub struct RefHash {
        lines: std::collections::HashMap<u64, Vec<(WatchId, PAddr, u64)>>,
        armed: usize,
    }

    impl RefHash {
        pub fn new() -> RefHash {
            RefHash {
                lines: std::collections::HashMap::new(),
                armed: 0,
            }
        }

        pub fn arm(&mut self, watcher: WatchId, addr: PAddr, len: u64) {
            let len = len.max(1);
            for line in lines_covering(addr, len) {
                let bucket = self.lines.entry(line.0).or_default();
                if bucket.contains(&(watcher, addr, len)) {
                    continue;
                }
                bucket.push((watcher, addr, len));
                self.armed += 1;
            }
        }

        pub fn disarm_all(&mut self, watcher: WatchId) {
            let mut removed = 0usize;
            self.lines.retain(|_, v| {
                let before = v.len();
                v.retain(|(w, _, _)| *w != watcher);
                removed += before - v.len();
                !v.is_empty()
            });
            self.armed -= removed;
        }

        pub fn on_store(&mut self, addr: PAddr, len: u64, out: &mut Vec<WakeEvent>) -> Cycles {
            let len = len.max(1);
            let mut scanned = 0u64;
            let before = out.len();
            for line in lines_covering(addr, len) {
                if let Some(entries) = self.lines.get(&line.0) {
                    for &(w, a, l) in entries {
                        scanned += 1;
                        let exact = ranges_overlap(addr.0, len, a.0, l);
                        if !out[before..].iter().any(|e| e.watcher == w) {
                            out.push(WakeEvent { watcher: w, exact });
                        }
                    }
                }
            }
            Cycles(2) + Cycles(scanned)
        }

        pub fn armed_len(&self) -> usize {
            self.armed
        }
    }
}

#[cfg(test)]
mod index_equivalence {
    use super::reference::{RefCam, RefHash};
    use super::*;

    /// xorshift64 driver — deterministic, no external RNG dependency.
    fn driver(mut state: u64) -> impl FnMut() -> u64 {
        move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        }
    }

    /// Address/len generator biased toward collisions: a small address
    /// window, lens spanning sub-line to many-line, occasional huge
    /// ranges to exercise the CAM overflow list.
    fn pick_range(next: &mut impl FnMut() -> u64) -> (PAddr, u64) {
        let r = next();
        let addr = PAddr((r >> 8) % 4096);
        let len = match r % 8 {
            0 => 1,
            1 => 4,
            2 => 8,
            3 => 16,
            4 => 100,
            5 => 0,                          // zero-len: treated as one byte
            6 => 64 * (INDEX_MAX_LINES + 2), // forces the `large` path
            _ => 48,
        };
        (addr, len)
    }

    #[test]
    fn cam_index_matches_linear_reference() {
        let mut next = driver(0xdead_beef_cafe_f00d);
        for _round in 0..30 {
            let mut idx = CamFilter::new(24);
            let mut lin = RefCam::new(24);
            for _op in 0..400 {
                let r = next();
                let watcher = WatchId(r % 6);
                match r % 10 {
                    0..=3 => {
                        let (addr, len) = pick_range(&mut next);
                        assert_eq!(idx.arm(watcher, addr, len), lin.arm(watcher, addr, len));
                    }
                    4 => {
                        idx.disarm_all(watcher);
                        lin.disarm_all(watcher);
                    }
                    _ => {
                        let (addr, len) = pick_range(&mut next);
                        let (mut a, mut b) = (Vec::new(), Vec::new());
                        let ca = idx.on_store(addr, len, &mut a);
                        let cb = lin.on_store(addr, len, &mut b);
                        assert_eq!(a, b, "wake set diverged at store {addr:?}+{len}");
                        assert_eq!(ca, cb, "cycle cost diverged");
                    }
                }
                assert_eq!(idx.armed_len(), lin.armed_len());
            }
        }
    }

    #[test]
    fn hash_index_matches_linear_reference() {
        let mut next = driver(0x0123_4567_89ab_cdef);
        for _round in 0..30 {
            let mut idx = HashFilter::new();
            let mut lin = RefHash::new();
            for _op in 0..400 {
                let r = next();
                let watcher = WatchId(r % 6);
                match r % 10 {
                    0..=3 => {
                        let (addr, len) = pick_range(&mut next);
                        idx.arm(watcher, addr, len).unwrap();
                        lin.arm(watcher, addr, len);
                    }
                    4 => {
                        idx.disarm_all(watcher);
                        lin.disarm_all(watcher);
                    }
                    _ => {
                        let (addr, len) = pick_range(&mut next);
                        let (mut a, mut b) = (Vec::new(), Vec::new());
                        let ca = idx.on_store(addr, len, &mut a);
                        let cb = lin.on_store(addr, len, &mut b);
                        assert_eq!(a, b, "wake set diverged at store {addr:?}+{len}");
                        assert_eq!(ca, cb, "cycle cost diverged");
                    }
                }
                assert_eq!(idx.armed_len(), lin.armed_len());
            }
        }
    }
}

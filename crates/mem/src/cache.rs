//! A set-associative, tag-only cache model with fine-grain partitioning.
//!
//! The paper (§4, "Managing Non-register State") proposes pinning critical
//! per-thread state using "fine-grain cache partitioning techniques that
//! allow hundreds of small partitions without loss of associativity"
//! (Vantage, `[66]`). [`Cache`] approximates Vantage: partitions declare a
//! *target fraction* of the cache; insertion evicts preferentially from
//! partitions that are over target, so a small partition keeps its lines
//! resident no matter how hard other partitions thrash.

use switchless_sim::hash::FxHashMap;

use crate::addr::{PAddr, LINE_BYTES};

/// Identifies a cache partition. Partition 0 is the default/unmanaged pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PartitionId(pub u32);

impl PartitionId {
    /// The default partition that unpartitioned traffic maps to.
    pub const DEFAULT: PartitionId = PartitionId(0);
}

/// Cache geometry: total size, associativity, line size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheGeom {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Number of ways per set.
    pub ways: u32,
}

impl CacheGeom {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways, or size not an
    /// integer number of `ways * LINE_BYTES`), or the set count is not a
    /// power of two.
    #[must_use]
    pub fn sets(&self) -> u64 {
        assert!(self.ways > 0, "cache must have at least one way");
        let way_bytes = u64::from(self.ways) * LINE_BYTES;
        assert!(
            self.size_bytes.is_multiple_of(way_bytes),
            "cache size {} not divisible by ways*line {}",
            self.size_bytes,
            way_bytes
        );
        let sets = self.size_bytes / way_bytes;
        assert!(
            sets.is_power_of_two(),
            "set count {sets} must be a power of two"
        );
        sets
    }

    /// Capacity in cache lines.
    #[must_use]
    pub fn lines(&self) -> u64 {
        self.size_bytes / LINE_BYTES
    }
}

#[derive(Clone, Copy, Debug)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    part: PartitionId,
    /// Global LRU stamp; larger is more recent.
    stamp: u64,
}

const INVALID_WAY: Way = Way {
    tag: 0,
    valid: false,
    dirty: false,
    part: PartitionId(0),
    stamp: 0,
};

/// Result of a fill: a dirty line was evicted and must be written back.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Writeback {
    /// Line address of the evicted dirty line.
    pub line: PAddr,
}

/// A set-associative cache with optional partition occupancy targets.
#[derive(Clone, Debug)]
pub struct Cache {
    geom: CacheGeom,
    sets: u64,
    ways: Vec<Way>,
    tick: u64,
    /// Per-partition target in lines. Absent partitions are unmanaged.
    targets: FxHashMap<PartitionId, u64>,
    /// Per-partition current occupancy in lines.
    occupancy: FxHashMap<PartitionId, u64>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    #[must_use]
    pub fn new(geom: CacheGeom) -> Cache {
        let sets = geom.sets();
        Cache {
            geom,
            sets,
            ways: vec![INVALID_WAY; (sets * u64::from(geom.ways)) as usize],
            tick: 0,
            targets: FxHashMap::default(),
            occupancy: FxHashMap::default(),
            hits: 0,
            misses: 0,
        }
    }

    /// Geometry this cache was built with.
    #[must_use]
    pub fn geom(&self) -> CacheGeom {
        self.geom
    }

    /// Declares a partition with a target fraction of the cache.
    ///
    /// Fractions over all partitions may exceed 1.0; targets are soft
    /// quotas used only for victim selection, exactly as in Vantage.
    pub fn set_partition_target(&mut self, part: PartitionId, fraction: f64) {
        let lines = (self.geom.lines() as f64 * fraction.clamp(0.0, 1.0)) as u64;
        self.targets.insert(part, lines.max(1));
    }

    /// Removes a partition's quota (its lines become unmanaged).
    pub fn clear_partition_target(&mut self, part: PartitionId) {
        self.targets.remove(&part);
    }

    /// Current occupancy of a partition, in lines.
    #[must_use]
    pub fn occupancy(&self, part: PartitionId) -> u64 {
        self.occupancy.get(&part).copied().unwrap_or(0)
    }

    /// Total (hits, misses) since construction.
    #[must_use]
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    fn set_range(&self, addr: PAddr) -> std::ops::Range<usize> {
        let set = (addr.0 / LINE_BYTES) & (self.sets - 1);
        let base = (set * u64::from(self.geom.ways)) as usize;
        base..base + self.geom.ways as usize
    }

    /// Looks up a line; updates LRU and dirty state on hit.
    ///
    /// Returns `true` on hit. Does **not** fill on miss — callers decide
    /// (the hierarchy fills on the way back down).
    pub fn access(&mut self, addr: PAddr, write: bool) -> bool {
        self.tick += 1;
        let tag = addr.0 / LINE_BYTES;
        let range = self.set_range(addr);
        for w in &mut self.ways[range] {
            if w.valid && w.tag == tag {
                w.stamp = self.tick;
                w.dirty |= write;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        false
    }

    /// Applies a pre-computed run of `n` sequential read hits — the
    /// instruction-fetch stream of one superblock — as a single batch.
    ///
    /// `lines` holds each distinct line the run touches together with
    /// the 1-based index of its **last** access within the run. Because
    /// LRU stamps are absolute `tick` values, `n` sequential hits leave
    /// each line stamped `tick + last_index`, the tick advanced by `n`,
    /// and `n` extra hits — so the batch reproduces `access()` called
    /// `n` times bit-for-bit in O(lines) instead of O(n).
    ///
    /// Returns `false` — and mutates nothing — unless every line is
    /// resident: a miss anywhere in the run must be modelled by the
    /// caller's per-access path (fills, latency, eviction order all
    /// depend on where in the stream it lands).
    pub fn access_run(&mut self, lines: &[(PAddr, u64)], n: u64) -> bool {
        if !lines.iter().all(|&(a, _)| self.contains(a)) {
            return false;
        }
        for &(addr, last) in lines {
            let tag = addr.0 / LINE_BYTES;
            let range = self.set_range(addr);
            for w in &mut self.ways[range] {
                if w.valid && w.tag == tag {
                    w.stamp = self.tick + last;
                    break;
                }
            }
        }
        self.tick += n;
        self.hits += n;
        true
    }

    /// Write-aware batch hit path: applies a pre-computed run of `n`
    /// sequential hits that mixes reads and writes — the merged
    /// fetch+data access stream of one memory-inclusive superblock.
    ///
    /// `lines` holds each distinct line with the 1-based index of its
    /// **last** access within the run and the OR of the `write` flags of
    /// every access that touched it. `n` sequential all-hit `access()`
    /// calls leave each line stamped `tick + last_index` with
    /// `dirty |= any_write`, the tick advanced by `n`, and `n` extra
    /// hits — so this reproduces the per-access path bit-for-bit in
    /// O(lines) instead of O(n).
    ///
    /// Returns `false` — and mutates nothing — unless every line is
    /// resident, exactly like [`Cache::access_run`].
    pub fn access_run_mixed(&mut self, lines: &[(PAddr, u64, bool)], n: u64) -> bool {
        if !lines.iter().all(|&(a, _, _)| self.contains(a)) {
            return false;
        }
        for &(addr, last, write) in lines {
            let tag = addr.0 / LINE_BYTES;
            let range = self.set_range(addr);
            for w in &mut self.ways[range] {
                if w.valid && w.tag == tag {
                    w.stamp = self.tick + last;
                    w.dirty |= write;
                    break;
                }
            }
        }
        self.tick += n;
        self.hits += n;
        true
    }

    /// Checks residency without perturbing LRU or statistics.
    #[must_use]
    pub fn contains(&self, addr: PAddr) -> bool {
        let tag = addr.0 / LINE_BYTES;
        let range = self.set_range(addr);
        self.ways[range].iter().any(|w| w.valid && w.tag == tag)
    }

    /// Inserts a line for `part`, evicting a victim if the set is full.
    ///
    /// Victim preference order (the Vantage approximation):
    /// 1. an invalid way;
    /// 2. the LRU way among lines whose partition is *over its target*;
    /// 3. the globally LRU way.
    ///
    /// Returns a [`Writeback`] if the victim was dirty.
    pub fn fill(&mut self, addr: PAddr, part: PartitionId, write: bool) -> Option<Writeback> {
        self.tick += 1;
        let tag = addr.0 / LINE_BYTES;
        let range = self.set_range(addr);
        // Already present (e.g. raced fill): just refresh.
        for w in &mut self.ways[range.clone()] {
            if w.valid && w.tag == tag {
                w.stamp = self.tick;
                w.dirty |= write;
                return None;
            }
        }

        // Pass 1: invalid way.
        let mut victim: Option<usize> = None;
        for i in range.clone() {
            if !self.ways[i].valid {
                victim = Some(i);
                break;
            }
        }
        // Pass 2: LRU among over-target partitions.
        if victim.is_none() {
            let mut best: Option<(u64, usize)> = None;
            for i in range.clone() {
                let w = &self.ways[i];
                let over = match self.targets.get(&w.part) {
                    Some(&t) => self.occupancy(w.part) > t,
                    // Unmanaged partitions are always considered over
                    // target so managed partitions win conflicts.
                    None => true,
                };
                if over && best.is_none_or(|(s, _)| w.stamp < s) {
                    best = Some((w.stamp, i));
                }
            }
            victim = best.map(|(_, i)| i);
        }
        // Pass 3: global LRU.
        let victim = victim.unwrap_or_else(|| {
            let mut best = range.start;
            for i in range.clone() {
                if self.ways[i].stamp < self.ways[best].stamp {
                    best = i;
                }
            }
            best
        });

        let old = self.ways[victim];
        let mut wb = None;
        if old.valid {
            if let Some(o) = self.occupancy.get_mut(&old.part) {
                *o = o.saturating_sub(1);
            }
            if old.dirty {
                wb = Some(Writeback {
                    line: PAddr(old.tag * LINE_BYTES),
                });
            }
        }
        self.ways[victim] = Way {
            tag,
            valid: true,
            dirty: write,
            part,
            stamp: self.tick,
        };
        *self.occupancy.entry(part).or_insert(0) += 1;
        wb
    }

    /// Invalidates a line if present; returns a writeback if it was dirty.
    pub fn invalidate(&mut self, addr: PAddr) -> Option<Writeback> {
        let tag = addr.0 / LINE_BYTES;
        let range = self.set_range(addr);
        for i in range {
            let w = self.ways[i];
            if w.valid && w.tag == tag {
                self.ways[i].valid = false;
                if let Some(o) = self.occupancy.get_mut(&w.part) {
                    *o = o.saturating_sub(1);
                }
                return w.dirty.then_some(Writeback {
                    line: PAddr(tag * LINE_BYTES),
                });
            }
        }
        None
    }

    /// Invalidates everything (e.g. simulated machine reset).
    pub fn flush_all(&mut self) {
        for w in &mut self.ways {
            w.valid = false;
            w.dirty = false;
        }
        self.occupancy.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B = 512B.
        Cache::new(CacheGeom {
            size_bytes: 512,
            ways: 2,
        })
    }

    /// Address that maps to `set` with tag distinguisher `k`.
    fn addr(set: u64, k: u64) -> PAddr {
        PAddr((k * 4 + set) * LINE_BYTES)
    }

    #[test]
    fn geometry_math() {
        let g = CacheGeom {
            size_bytes: 32 * 1024,
            ways: 8,
        };
        assert_eq!(g.sets(), 64);
        assert_eq!(g.lines(), 512);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let g = CacheGeom {
            size_bytes: 3 * 64 * 2,
            ways: 2,
        };
        let _ = g.sets();
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        let a = addr(0, 0);
        assert!(!c.access(a, false));
        c.fill(a, PartitionId::DEFAULT, false);
        assert!(c.access(a, false));
        assert_eq!(c.hit_miss(), (1, 1));
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny();
        let a = addr(1, 0);
        let b = addr(1, 1);
        let x = addr(1, 2);
        c.fill(a, PartitionId::DEFAULT, false);
        c.fill(b, PartitionId::DEFAULT, false);
        // Touch `a` so `b` is LRU.
        assert!(c.access(a, false));
        c.fill(x, PartitionId::DEFAULT, false);
        assert!(c.contains(a));
        assert!(!c.contains(b));
        assert!(c.contains(x));
    }

    #[test]
    fn dirty_eviction_produces_writeback() {
        let mut c = tiny();
        let a = addr(2, 0);
        c.fill(a, PartitionId::DEFAULT, true);
        let b = addr(2, 1);
        c.fill(b, PartitionId::DEFAULT, false);
        let wb = c.fill(addr(2, 2), PartitionId::DEFAULT, false);
        assert_eq!(wb, Some(Writeback { line: a.line() }));
    }

    #[test]
    fn partition_protects_resident_lines() {
        let mut c = tiny();
        let prot = PartitionId(1);
        // Protect 25% of the cache (2 lines) for partition 1.
        c.set_partition_target(prot, 0.25);
        let pinned = addr(3, 0);
        c.fill(pinned, prot, false);
        // Thrash the same set with unmanaged traffic: pinned line survives
        // because unmanaged lines are always preferred victims.
        for k in 1..50 {
            c.fill(addr(3, k), PartitionId::DEFAULT, false);
        }
        assert!(c.contains(pinned), "partitioned line was evicted");
    }

    #[test]
    fn without_partition_line_is_thrashed_out() {
        let mut c = tiny();
        let victim = addr(3, 0);
        c.fill(victim, PartitionId::DEFAULT, false);
        for k in 1..50 {
            c.fill(addr(3, k), PartitionId::DEFAULT, false);
        }
        assert!(!c.contains(victim));
    }

    #[test]
    fn over_target_partition_loses_protection() {
        let mut c = tiny();
        let p = PartitionId(1);
        // Target of 1 line; insert 3 lines into different sets for p.
        c.targets.insert(p, 1);
        c.fill(addr(0, 0), p, false);
        c.fill(addr(1, 0), p, false);
        c.fill(addr(2, 0), p, false);
        assert_eq!(c.occupancy(p), 3);
        // p is over target, so its lines are evictable by default traffic.
        c.fill(addr(0, 1), PartitionId::DEFAULT, false);
        c.fill(addr(0, 2), PartitionId::DEFAULT, false);
        c.fill(addr(0, 3), PartitionId::DEFAULT, false);
        assert!(!c.contains(addr(0, 0)));
    }

    #[test]
    fn occupancy_tracks_fills_and_invalidates() {
        let mut c = tiny();
        let p = PartitionId(7);
        c.fill(addr(0, 0), p, false);
        c.fill(addr(1, 0), p, false);
        assert_eq!(c.occupancy(p), 2);
        c.invalidate(addr(0, 0));
        assert_eq!(c.occupancy(p), 1);
        c.flush_all();
        assert_eq!(c.occupancy(p), 0);
    }

    #[test]
    fn invalidate_dirty_returns_writeback() {
        let mut c = tiny();
        let a = addr(0, 0);
        c.fill(a, PartitionId::DEFAULT, true);
        assert_eq!(c.invalidate(a), Some(Writeback { line: a.line() }));
        assert_eq!(c.invalidate(a), None);
    }

    #[test]
    fn access_run_matches_sequential_accesses_exactly() {
        let mut a = tiny();
        for s in 0..4 {
            a.fill(addr(s, 0), PartitionId::DEFAULT, false);
        }
        let mut b = a.clone();
        // A fetch stream touching lines (0,0) x3, (1,0) x2, (0,0) again:
        // 6 accesses; last indices 6 and 5.
        for &(s, _) in &[(0, 1u64), (0, 2), (0, 3), (1, 4), (1, 5), (0, 6)] {
            assert!(a.access(addr(s, 0), false));
        }
        let lines = [(addr(0, 0), 6u64), (addr(1, 0), 5)];
        assert!(b.access_run(&lines, 6));
        // `Cache` derives `Debug` over every field (ways with stamps,
        // tick, stats): textual equality is full state equality.
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn access_run_refuses_non_resident_line_untouched() {
        let mut c = tiny();
        c.fill(addr(0, 0), PartitionId::DEFAULT, false);
        let before = format!("{c:?}");
        let lines = [(addr(0, 0), 1u64), (addr(1, 0), 2)];
        assert!(!c.access_run(&lines, 2), "line (1,0) is not resident");
        assert_eq!(format!("{c:?}"), before, "a refused run must not mutate");
    }

    #[test]
    fn access_run_mixed_matches_sequential_accesses_exactly() {
        let mut a = tiny();
        for s in 0..4 {
            a.fill(addr(s, 0), PartitionId::DEFAULT, false);
        }
        let mut b = a.clone();
        // Mixed stream: fetch (0,0), store (1,0), fetch (0,0), load
        // (1,0), store (2,0), fetch (0,0) — 6 accesses. Last indices:
        // line (0,0)=6 clean, (1,0)=4 dirty (store at 2), (2,0)=5 dirty.
        for &(s, w) in &[
            (0u64, false),
            (1, true),
            (0, false),
            (1, false),
            (2, true),
            (0, false),
        ] {
            assert!(a.access(addr(s, 0), w));
        }
        let lines = [
            (addr(0, 0), 6u64, false),
            (addr(1, 0), 4, true),
            (addr(2, 0), 5, true),
        ];
        assert!(b.access_run_mixed(&lines, 6));
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn access_run_mixed_refuses_non_resident_line_untouched() {
        let mut c = tiny();
        c.fill(addr(0, 0), PartitionId::DEFAULT, false);
        let before = format!("{c:?}");
        let lines = [(addr(0, 0), 1u64, true), (addr(3, 0), 2, false)];
        assert!(!c.access_run_mixed(&lines, 2), "line (3,0) is not resident");
        assert_eq!(format!("{c:?}"), before, "a refused run must not mutate");
    }

    #[test]
    fn refill_same_line_is_idempotent() {
        let mut c = tiny();
        let a = addr(0, 0);
        c.fill(a, PartitionId::DEFAULT, false);
        assert!(c.fill(a, PartitionId::DEFAULT, true).is_none());
        assert_eq!(c.occupancy(PartitionId::DEFAULT), 1);
        // The second fill marked it dirty.
        let wb = c.invalidate(a);
        assert!(wb.is_some());
    }
}

//! Memory-system models for the `switchless` simulator.
//!
//! The paper's argument leans on four memory-system mechanisms, all modeled
//! here:
//!
//! * [`cache`] / [`hierarchy`] — a set-associative L1/L2/L3 + DRAM latency
//!   model. §4 proposes storing hardware-thread state in L2/L3 fractions
//!   and pinning critical working sets with *fine-grain cache partitioning*
//!   (Vantage-style); [`cache::Cache`] supports per-partition occupancy
//!   targets and partition-aware victim selection.
//! * [`tlb`] — a small TLB model with page-walk penalties, for the §4
//!   "Managing Non-register State" experiments.
//! * [`monitor`] — the **generalized monitor filter**: the paper requires
//!   `monitor`/`mwait` to observe *any* store to *any* address, including
//!   DMA writes from devices and MMIO. Two implementations are provided —
//!   an associative [`monitor::CamFilter`] with bounded capacity and a
//!   line-granular [`monitor::HashFilter`] that can produce (measurable)
//!   false wakeups — so experiment F12 can compare them.
//! * [`prefetch`] — the §4 wake-prefetcher that captures a thread's working
//!   set while it runs and warms caches when the thread becomes runnable.
//!
//! All models are *timing* models: they track tags, occupancy and latency,
//! while actual data contents live in the flat memory owned by the machine
//! in `switchless-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod cache;
pub mod dram;
pub mod hierarchy;
pub mod monitor;
pub mod prefetch;
pub mod tlb;

pub use addr::{PAddr, LINE_BYTES, PAGE_BYTES};
pub use cache::{Cache, CacheGeom, PartitionId};
pub use hierarchy::{AccessKind, AccessResult, Hierarchy, HierarchyConfig, HitLevel};
pub use monitor::{CamFilter, HashFilter, MonitorFilter, WakeEvent, WatchId};

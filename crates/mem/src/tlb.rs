//! A TLB model with page-walk penalties.
//!
//! §4 of the paper notes that "misses in caches and TLBs can lead to
//! significant performance loss and even thrashing as numerous hardware
//! threads start and stop". The experiments that quantify that (F10) use
//! this model: a fully-associative LRU TLB per core, charged with a
//! configurable page-walk penalty on miss.

use switchless_sim::hash::{fx_map_with_capacity, FxHashMap};
use switchless_sim::time::Cycles;

/// Configuration for a [`Tlb`].
#[derive(Clone, Copy, Debug)]
pub struct TlbConfig {
    /// Number of entries (e.g. 64 for an L1 DTLB).
    pub entries: usize,
    /// Cycles charged for a page walk on miss (~4 dependent cache
    /// accesses; ≈100 cycles when walks hit the L2).
    pub walk_penalty: Cycles,
}

impl Default for TlbConfig {
    fn default() -> TlbConfig {
        TlbConfig {
            entries: 64,
            walk_penalty: Cycles(100),
        }
    }
}

/// A fully-associative, LRU translation lookaside buffer.
///
/// Tracks page-number residency only; the simulator's address space is
/// identity-mapped, so the TLB contributes *timing*, not translation.
/// Entries are tagged with an address-space id so multiple processes can
/// share a TLB without flushes (as with x86 PCIDs).
#[derive(Clone, Debug)]
pub struct Tlb {
    config: TlbConfig,
    /// (asid, page-number) -> last-use stamp.
    ///
    /// Fx-hashed: LRU eviction takes a `min_by_key` over unique stamps,
    /// so the victim never depends on map iteration order.
    entries: FxHashMap<(u16, u64), u64>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates an empty TLB.
    #[must_use]
    pub fn new(config: TlbConfig) -> Tlb {
        Tlb {
            config,
            entries: fx_map_with_capacity(config.entries + 1),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Translates a page access; returns the added latency (zero on hit,
    /// the walk penalty on miss) and installs the entry.
    pub fn access(&mut self, asid: u16, page_number: u64) -> Cycles {
        self.tick += 1;
        let key = (asid, page_number);
        if let Some(stamp) = self.entries.get_mut(&key) {
            *stamp = self.tick;
            self.hits += 1;
            return Cycles::ZERO;
        }
        self.misses += 1;
        if self.entries.len() >= self.config.entries {
            // Evict the LRU entry.
            if let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, &s)| s) {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(key, self.tick);
        self.config.walk_penalty
    }

    /// Whether `(asid, page_number)` is currently resident. Pure: no
    /// tick advance, no stamp refresh, no stats — the superblock probe
    /// uses this to decide residency *before* committing any state.
    #[must_use]
    pub fn contains(&self, asid: u16, page_number: u64) -> bool {
        self.entries.contains_key(&(asid, page_number))
    }

    /// Batch equivalent of `n` consecutive all-hit [`Tlb::access`]
    /// calls. `pages` holds each distinct page with the 1-based index of
    /// its **last** access within the run of `n`; the caller guarantees
    /// the indices come from one in-order access walk. Returns `false`
    /// without touching any state unless every page is resident — the
    /// caller then falls back to per-access calls.
    ///
    /// Equivalence to the sequential path: every access in an all-hit
    /// run bumps `tick` and `hits` by one and leaves each page stamped
    /// with the tick of its last access, which is exactly
    /// `tick0 + last_index`.
    pub fn access_run(&mut self, asid: u16, pages: &[(u64, u64)], n: u64) -> bool {
        if !pages.iter().all(|&(p, _)| self.contains(asid, p)) {
            return false;
        }
        for &(p, last) in pages {
            let stamp = self
                .entries
                .get_mut(&(asid, p))
                .expect("residency checked above");
            *stamp = self.tick + last;
        }
        self.tick += n;
        self.hits += n;
        true
    }

    /// Flushes all entries for one address space (e.g. on teardown).
    pub fn flush_asid(&mut self, asid: u16) {
        self.entries.retain(|&(a, _), _| a != asid);
    }

    /// Flushes everything.
    pub fn flush_all(&mut self) {
        self.entries.clear();
    }

    /// Lifetime (hits, misses).
    #[must_use]
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of currently resident entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the TLB holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Tlb {
        Tlb::new(TlbConfig {
            entries: 4,
            walk_penalty: Cycles(100),
        })
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut t = small();
        assert_eq!(t.access(0, 5), Cycles(100));
        assert_eq!(t.access(0, 5), Cycles::ZERO);
        assert_eq!(t.hit_miss(), (1, 1));
    }

    #[test]
    fn capacity_evicts_lru() {
        let mut t = small();
        for p in 0..4 {
            t.access(0, p);
        }
        // Touch page 0 so page 1 is LRU.
        t.access(0, 0);
        t.access(0, 99); // evicts page 1
        assert_eq!(t.access(0, 0), Cycles::ZERO);
        assert_eq!(
            t.access(0, 1),
            Cycles(100),
            "page 1 should have been evicted"
        );
    }

    #[test]
    fn access_run_matches_sequential_accesses_exactly() {
        // Whole-state equivalence via Debug formatting, like the cache
        // batch test: stamps, tick, and hit/miss counters all included.
        let mut a = small();
        let mut b = small();
        for t in [&mut a, &mut b] {
            t.access(0, 1);
            t.access(0, 2);
            t.access(0, 3);
        }
        // Run: pages 2, 1, 2, 2, 1 -> last access of 2 at index 4, of
        // 1 at index 5.
        for p in [2, 1, 2, 2, 1] {
            assert_eq!(a.access(0, p), Cycles::ZERO);
        }
        assert!(b.access_run(0, &[(2, 4), (1, 5)], 5));
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn access_run_refuses_non_resident_page_untouched() {
        let mut t = small();
        t.access(0, 1);
        let before = format!("{t:?}");
        assert!(!t.access_run(0, &[(1, 1), (9, 2)], 2));
        assert_eq!(format!("{t:?}"), before, "refusal must not mutate");
    }

    #[test]
    fn contains_is_pure() {
        let mut t = small();
        t.access(0, 1);
        let before = format!("{t:?}");
        assert!(t.contains(0, 1));
        assert!(!t.contains(0, 2));
        assert!(!t.contains(1, 1));
        assert_eq!(format!("{t:?}"), before);
    }

    #[test]
    fn asids_do_not_collide() {
        let mut t = small();
        t.access(1, 7);
        assert_eq!(t.access(2, 7), Cycles(100), "distinct asid must miss");
    }

    #[test]
    fn flush_asid_only_hits_that_asid() {
        let mut t = small();
        t.access(1, 7);
        t.access(2, 8);
        t.flush_asid(1);
        assert_eq!(t.access(1, 7), Cycles(100));
        assert_eq!(t.access(2, 8), Cycles::ZERO);
    }

    #[test]
    fn flush_all_clears() {
        let mut t = small();
        t.access(0, 1);
        t.flush_all();
        assert!(t.is_empty());
        assert_eq!(t.access(0, 1), Cycles(100));
    }
}

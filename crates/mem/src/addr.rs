//! Physical addresses and geometry constants.

use core::fmt;
use core::ops::Add;

/// Cache line size in bytes. All modeled caches use 64-byte lines.
pub const LINE_BYTES: u64 = 64;

/// Page size in bytes (4 KiB pages, the x86-64 base page size).
pub const PAGE_BYTES: u64 = 4096;

/// A physical byte address in simulated memory.
///
/// The simulator uses a single flat physical address space; device MMIO
/// windows and DMA targets are carved out of it by convention (see
/// `switchless-dev`). The paper's generalized `monitor` explicitly covers
/// *uncacheable* addresses too, so nothing in this type restricts the
/// range.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PAddr(pub u64);

impl PAddr {
    /// The address of the cache line containing this byte.
    #[must_use]
    pub fn line(self) -> PAddr {
        PAddr(self.0 & !(LINE_BYTES - 1))
    }

    /// The 4 KiB page number containing this byte.
    #[must_use]
    pub fn page_number(self) -> u64 {
        self.0 / PAGE_BYTES
    }

    /// Byte offset within the cache line.
    #[must_use]
    pub fn line_offset(self) -> u64 {
        self.0 & (LINE_BYTES - 1)
    }

    /// Checked addition of a byte offset.
    #[must_use]
    pub fn checked_add(self, off: u64) -> Option<PAddr> {
        self.0.checked_add(off).map(PAddr)
    }
}

impl Add<u64> for PAddr {
    type Output = PAddr;

    fn add(self, off: u64) -> PAddr {
        PAddr(self.0 + off)
    }
}

impl fmt::Display for PAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Iterates the line-aligned addresses of every cache line touched by the
/// byte range `[addr, addr + len)`.
///
/// # Examples
///
/// ```
/// use switchless_mem::addr::{lines_covering, PAddr};
///
/// let lines: Vec<_> = lines_covering(PAddr(60), 8).collect();
/// assert_eq!(lines, vec![PAddr(0), PAddr(64)]);
/// ```
pub fn lines_covering(addr: PAddr, len: u64) -> impl Iterator<Item = PAddr> {
    let first = addr.line().0;
    let last = if len == 0 {
        first
    } else {
        PAddr(addr.0 + (len - 1)).line().0
    };
    (first..=last).step_by(LINE_BYTES as usize).map(PAddr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_alignment() {
        assert_eq!(PAddr(0).line(), PAddr(0));
        assert_eq!(PAddr(63).line(), PAddr(0));
        assert_eq!(PAddr(64).line(), PAddr(64));
        assert_eq!(PAddr(130).line_offset(), 2);
    }

    #[test]
    fn page_numbers() {
        assert_eq!(PAddr(0).page_number(), 0);
        assert_eq!(PAddr(4095).page_number(), 0);
        assert_eq!(PAddr(4096).page_number(), 1);
    }

    #[test]
    fn lines_covering_spans() {
        let ls: Vec<_> = lines_covering(PAddr(0), 64).collect();
        assert_eq!(ls, vec![PAddr(0)]);
        let ls: Vec<_> = lines_covering(PAddr(0), 65).collect();
        assert_eq!(ls, vec![PAddr(0), PAddr(64)]);
        let ls: Vec<_> = lines_covering(PAddr(100), 200).collect();
        assert_eq!(ls, vec![PAddr(64), PAddr(128), PAddr(192), PAddr(256)]);
    }

    #[test]
    fn lines_covering_zero_len() {
        let ls: Vec<_> = lines_covering(PAddr(70), 0).collect();
        assert_eq!(ls, vec![PAddr(64)]);
    }
}

//! Working-set capture and wake-prefetch (§4 "Managing Non-register State").
//!
//! The paper proposes "prefetching techniques that warm up caches of all
//! types as soon as threads become runnable", capturing "the cache line
//! they perform an `mwait` on and memory regions written to by I/O
//! devices". [`WakePrefetcher`] records the last-N distinct lines each
//! thread touches while running; when the thread is woken, the recorded
//! set is replayed into the waking core's caches.

use switchless_sim::hash::FxHashMap;

use crate::addr::PAddr;
use crate::monitor::WatchId;

/// Per-thread captured working set (most-recent-N distinct lines).
#[derive(Clone, Debug, Default)]
struct WorkingSet {
    /// Line addresses, most recently touched last.
    lines: Vec<PAddr>,
}

/// Records working sets per thread and replays them on wake.
#[derive(Clone, Debug)]
pub struct WakePrefetcher {
    /// Fx-hashed: only keyed lookups; replay order comes from the
    /// per-thread `lines` vector, never from map iteration.
    sets: FxHashMap<WatchId, WorkingSet>,
    /// Max distinct lines remembered per thread.
    capacity: usize,
    enabled: bool,
    replays: u64,
    lines_replayed: u64,
}

impl WakePrefetcher {
    /// Creates a prefetcher remembering up to `capacity` lines per thread.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> WakePrefetcher {
        assert!(capacity > 0, "prefetcher capacity must be positive");
        WakePrefetcher {
            sets: FxHashMap::default(),
            capacity,
            enabled: true,
            replays: 0,
            lines_replayed: 0,
        }
    }

    /// Enables or disables capture+replay (the F13 ablation switch).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether the prefetcher is active.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Notes that `thread` touched `addr` while running.
    pub fn record_access(&mut self, thread: WatchId, addr: PAddr) {
        if !self.enabled {
            return;
        }
        let set = self.sets.entry(thread).or_default();
        let line = addr.line();
        if let Some(pos) = set.lines.iter().position(|&l| l == line) {
            set.lines.remove(pos);
        } else if set.lines.len() >= self.capacity {
            set.lines.remove(0);
        }
        set.lines.push(line);
    }

    /// Batch equivalent of a run of [`WakePrefetcher::record_access`]
    /// calls: `lines` must be the run's **distinct** line addresses in
    /// last-access order. The per-thread state is an LRU list — after
    /// any access history it holds the last `capacity` distinct lines
    /// of that history in last-access order, which is a function of the
    /// history's dedup-keep-last projection only. Replaying the deduped
    /// run therefore lands in exactly the state the full per-access run
    /// would.
    pub fn record_run(&mut self, thread: WatchId, lines: &[PAddr]) {
        if !self.enabled || lines.is_empty() {
            return;
        }
        let set = self.sets.entry(thread).or_default();
        for &line in lines {
            if let Some(pos) = set.lines.iter().position(|&l| l == line) {
                set.lines.remove(pos);
            } else if set.lines.len() >= self.capacity {
                set.lines.remove(0);
            }
            set.lines.push(line);
        }
    }

    /// Returns the lines to warm for a thread being woken (oldest first),
    /// empty when disabled or unknown. Borrows rather than allocating —
    /// wakes are frequent under I/O-heavy workloads.
    #[must_use]
    pub fn wake_set(&mut self, thread: WatchId) -> &[PAddr] {
        if !self.enabled {
            return &[];
        }
        match self.sets.get(&thread) {
            Some(ws) => {
                self.replays += 1;
                self.lines_replayed += ws.lines.len() as u64;
                &ws.lines
            }
            None => &[],
        }
    }

    /// Forgets a thread's set (thread destroyed / reassigned).
    pub fn forget(&mut self, thread: WatchId) {
        self.sets.remove(&thread);
    }

    /// `(wake replays performed, total lines replayed)`.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.replays, self.lines_replayed)
    }

    /// Number of distinct lines currently captured for `thread`.
    #[must_use]
    pub fn captured_len(&self, thread: WatchId) -> usize {
        self.sets.get(&thread).map_or(0, |s| s.lines.len())
    }

    /// Clones the capture state for `threads` into a [`PrefetchView`] an
    /// epoch worker can record into off-thread. Wake replay never happens
    /// inside a committed epoch (a wake ends it), so only capture state
    /// travels.
    pub fn core_view<I: IntoIterator<Item = WatchId>>(&self, threads: I) -> PrefetchView {
        let mut sets = FxHashMap::default();
        for t in threads {
            if let Some(ws) = self.sets.get(&t) {
                sets.insert(t, ws.clone());
            }
        }
        PrefetchView {
            sets,
            capacity: self.capacity,
            enabled: self.enabled,
        }
    }

    /// Folds a worker's [`PrefetchView`] back in: each thread's captured
    /// set is replaced wholesale (per-thread state, so per-key overwrite
    /// reproduces the serial outcome regardless of merge order).
    pub fn absorb(&mut self, view: PrefetchView) {
        for (t, ws) in view.sets {
            self.sets.insert(t, ws);
        }
    }
}

/// A detached slice of [`WakePrefetcher`] capture state for the threads
/// enrolled on one core, mutated by an epoch worker and folded back with
/// [`WakePrefetcher::absorb`] at commit.
#[derive(Clone, Debug)]
pub struct PrefetchView {
    sets: FxHashMap<WatchId, WorkingSet>,
    capacity: usize,
    enabled: bool,
}

impl PrefetchView {
    /// Notes that `thread` touched `addr`; identical recency/eviction
    /// behaviour to [`WakePrefetcher::record_access`].
    pub fn record_access(&mut self, thread: WatchId, addr: PAddr) {
        if !self.enabled {
            return;
        }
        let set = self.sets.entry(thread).or_default();
        let line = addr.line();
        if let Some(pos) = set.lines.iter().position(|&l| l == line) {
            set.lines.remove(pos);
        } else if set.lines.len() >= self.capacity {
            set.lines.remove(0);
        }
        set.lines.push(line);
    }

    /// Batch recording, identical to [`WakePrefetcher::record_run`].
    pub fn record_run(&mut self, thread: WatchId, lines: &[PAddr]) {
        if !self.enabled || lines.is_empty() {
            return;
        }
        let set = self.sets.entry(thread).or_default();
        for &line in lines {
            if let Some(pos) = set.lines.iter().position(|&l| l == line) {
                set.lines.remove(pos);
            } else if set.lines.len() >= self.capacity {
                set.lines.remove(0);
            }
            set.lines.push(line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn captures_distinct_lines() {
        let mut p = WakePrefetcher::new(8);
        let t = WatchId(1);
        p.record_access(t, PAddr(0));
        p.record_access(t, PAddr(8)); // same line
        p.record_access(t, PAddr(64));
        assert_eq!(p.captured_len(t), 2);
        assert_eq!(p.wake_set(t), vec![PAddr(0), PAddr(64)]);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut p = WakePrefetcher::new(2);
        let t = WatchId(1);
        p.record_access(t, PAddr(0));
        p.record_access(t, PAddr(64));
        p.record_access(t, PAddr(128));
        assert_eq!(p.wake_set(t), vec![PAddr(64), PAddr(128)]);
    }

    #[test]
    fn retouch_refreshes_recency() {
        let mut p = WakePrefetcher::new(2);
        let t = WatchId(1);
        p.record_access(t, PAddr(0));
        p.record_access(t, PAddr(64));
        p.record_access(t, PAddr(0)); // refresh line 0
        p.record_access(t, PAddr(128)); // evicts 64
        assert_eq!(p.wake_set(t), vec![PAddr(0), PAddr(128)]);
    }

    #[test]
    fn record_run_matches_per_access_recording() {
        // Full access stream vs its dedup-keep-last projection: final
        // state must be identical, including capacity evictions that
        // happen mid-run.
        let mut per = WakePrefetcher::new(2);
        let mut run = WakePrefetcher::new(2);
        let t = WatchId(7);
        for p in [&mut per, &mut run] {
            p.record_access(t, PAddr(0));
            p.record_access(t, PAddr(64));
        }
        // Stream: 128, 0, 128, 192 (lines). Dedup keep-last: 0, 128, 192.
        for a in [128u64, 0, 128, 192] {
            per.record_access(t, PAddr(a));
        }
        run.record_run(t, &[PAddr(0), PAddr(128), PAddr(192)]);
        assert_eq!(per.wake_set(t).to_vec(), run.wake_set(t).to_vec());
        assert_eq!(per.captured_len(t), run.captured_len(t));
    }

    #[test]
    fn disabled_records_nothing() {
        let mut p = WakePrefetcher::new(4);
        p.set_enabled(false);
        let t = WatchId(1);
        p.record_access(t, PAddr(0));
        assert!(p.wake_set(t).is_empty());
        assert_eq!(p.stats(), (0, 0));
    }

    #[test]
    fn unknown_thread_empty() {
        let mut p = WakePrefetcher::new(4);
        assert!(p.wake_set(WatchId(42)).is_empty());
    }

    #[test]
    fn forget_clears() {
        let mut p = WakePrefetcher::new(4);
        let t = WatchId(1);
        p.record_access(t, PAddr(0));
        p.forget(t);
        assert_eq!(p.captured_len(t), 0);
    }

    #[test]
    fn stats_count_replays() {
        let mut p = WakePrefetcher::new(4);
        let t = WatchId(1);
        p.record_access(t, PAddr(0));
        p.record_access(t, PAddr(64));
        let _ = p.wake_set(t);
        let _ = p.wake_set(t);
        assert_eq!(p.stats(), (2, 4));
    }
}

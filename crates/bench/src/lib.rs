//! Criterion benchmarks live in `benches/paper.rs`; this library
//! intentionally has no items.

//! `switchless-bench` — dependency-free host-throughput benchmark.
//!
//! Criterion (behind the `criterion` feature) is for local deep-dives;
//! this binary is the tier-1-buildable complement: it measures how fast
//! the *host* executes the simulator's hot paths and writes the numbers
//! to a `BENCH_<n>.json` at the repo root so the perf trajectory across
//! PRs has data points. Simulated-cycle results are untouched by
//! anything measured here — see "results/ bit-identical" in
//! EXPERIMENTS.md.
//!
//! The artifact is emitted by iterating one row table, so every
//! measured bench always carries a `baseline` and `speedup` entry —
//! a bench cannot be added to the measurement list without also being
//! auditable from the JSON alone (BENCH_5.json omitted the burst
//! bench's baseline exactly that way).
//!
//! Usage:
//!
//! ```text
//! switchless-bench [--quick] [--out PATH]
//! ```
//!
//! `--quick` shrinks each measurement window (CI smoke); `--out` defaults
//! to `BENCH_10.json` in the current directory.
//!
//! Every bench is measured best-of-3: three independent windows, and the
//! artifact carries both the per-bench minimum (`benches_min`) and median
//! (`benches_median`). The legacy `benches` section equals the median, so
//! older readers (and the ci.sh gate's backward-compat fallback) keep
//! working; the median is the comparison number — a single noisy window
//! on a shared host no longer defines the PR's data point.

use std::time::Instant;

use switchless_core::machine::{Machine, MachineConfig, MonitorKind};
use switchless_isa::asm::assemble;
use switchless_mem::monitor::{CamFilter, HashFilter, MonitorFilter, WatchId};
use switchless_mem::PAddr;
use switchless_sim::event::EventQueue;
use switchless_sim::rng::Rng;
use switchless_sim::time::Cycles;

/// PR-5 numbers (commit 8c8e597, BENCH_5.json), measured on this
/// container with the same windows. They stay in the JSON so the
/// speedup of the superblock engine is auditable from the artifact
/// alone.
mod baseline {
    /// Spin-loop microbench, host instructions/sec.
    pub const SPIN_INSTS_PER_SEC: f64 = 56_841_385.0;
    /// Single-slot burst microbench, host instructions/sec.
    pub const BURST_INSTS_PER_SEC: f64 = 58_548_894.0;
    /// Machine-level store loop (full `after_store` path), insts/sec.
    pub const STORE_LOOP_INSTS_PER_SEC: f64 = 24_364_402.0;
    /// Raw `CamFilter::on_store`, stores/sec (64 armed entries).
    pub const CAM_STORES_PER_SEC: f64 = 47_785_546.0;
    /// Raw `HashFilter::on_store`, stores/sec (64 armed lines).
    pub const HASH_STORES_PER_SEC: f64 = 58_207_769.0;
    /// `EventQueue` schedule/pop/cancel churn, events/sec.
    pub const EVENTS_PER_SEC: f64 = 26_815_347.0;
    /// Where the numbers came from.
    pub const NOTE: &str = "PR 5 (commit 8c8e597, BENCH_5.json), full windows";
}

struct Opts {
    quick: bool,
    out: String,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        quick: false,
        out: "BENCH_10.json".to_owned(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--out" => {
                opts.out = args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                });
            }
            other => {
                if let Some(p) = other.strip_prefix("--out=") {
                    opts.out = p.to_owned();
                } else {
                    eprintln!("usage: switchless-bench [--quick] [--out PATH]");
                    std::process::exit(2);
                }
            }
        }
    }
    opts
}

/// Runs `step` (which reports how many operations it performed) until
/// `window_ms` of host time has elapsed, and returns operations/sec.
fn measure(window_ms: u64, mut step: impl FnMut() -> u64) -> f64 {
    // Warmup: one step, unmeasured.
    step();
    let start = Instant::now();
    let mut ops = 0u64;
    loop {
        ops += step();
        let elapsed = start.elapsed();
        if elapsed.as_millis() as u64 >= window_ms {
            return ops as f64 / elapsed.as_secs_f64();
        }
    }
}

/// Best-of-3: runs `bench` three times (fresh machine each time) and
/// returns `(min, median)`. The median is the artifact's comparison
/// number; the min documents the noise floor of the three windows.
fn best3(mut bench: impl FnMut() -> f64) -> (f64, f64) {
    let mut s = [bench(), bench(), bench()];
    s.sort_by(f64::total_cmp);
    (s[0], s[1])
}

/// The spin machine shared by the spin-family benches: a pure ALU loop
/// whose 4-instruction body unrolls into one 256-instruction
/// superblock.
fn spin_machine(cfg: MachineConfig) -> Machine {
    let mut m = Machine::new(cfg);
    let prog = assemble(
        ".base 0x10000\n\
         entry: movi r1, 0\n\
         loop:  addi r1, r1, 1\n\
         addi r2, r1, 3\n\
         xor r3, r2, r1\n\
         jmp loop\n",
    )
    .expect("spin program");
    let t = m.load_program(0, &prog).expect("load");
    m.start_thread(t);
    m
}

/// Host instructions/sec executing a pure ALU spin loop — the
/// superblock + dispatch-path microbench.
fn bench_spin(window_ms: u64) -> f64 {
    let mut m = spin_machine(MachineConfig::small());
    measure(window_ms, || {
        let before = m.counters().get("inst.executed");
        m.run_for(Cycles(200_000));
        m.counters().get("inst.executed") - before
    })
}

/// `bench_spin` with the superblock engine disabled: the per-inst
/// single-step burst path. Keeping this measured guards the fallback
/// path (everything that is not a hot inert loop) against regressions
/// the superblock numbers would mask.
fn bench_spin_nosb(window_ms: u64) -> f64 {
    let mut m = spin_machine(MachineConfig::small());
    m.set_superblocks(false);
    measure(window_ms, || {
        let before = m.counters().get("inst.executed");
        m.run_for(Cycles(200_000));
        m.counters().get("inst.executed") - before
    })
}

/// Host instructions/sec for a store loop: every iteration goes through
/// `data_access`, the monitor filter, and the mmio-hook scan — the
/// allocation-free store-path microbench. 32 parked waiters keep the
/// filter populated (their watches never match the stored address).
fn bench_store_loop(window_ms: u64, kind: MonitorKind) -> f64 {
    let mut cfg = MachineConfig::small();
    cfg.monitor = kind;
    let mut m = Machine::new(cfg);
    let waiter = assemble(
        ".base 0x30000\n\
         entry: monitor r1\n\
         mwait\n\
         halt\n",
    )
    .expect("waiter program");
    m.load_image(&waiter).expect("load waiter");
    for i in 0..32u64 {
        let w = m.spawn_at(0, 0x30000, true).expect("spawn waiter");
        m.set_thread_reg(w, 1, 0x8000 + i * 64);
        m.start_thread(w);
    }
    let prog = assemble(
        ".base 0x10000\n\
         entry: movi r1, 0x20000\n\
         loop:  st r1, r1, 0\n\
         st r1, r1, 8\n\
         jmp loop\n",
    )
    .expect("store program");
    let t = m.load_program(0, &prog).expect("load");
    m.start_thread(t);
    // Park the waiters before timing.
    m.run_for(Cycles(10_000));
    measure(window_ms, || {
        let before = m.counters().get("inst.executed");
        m.run_for(Cycles(200_000));
        m.counters().get("inst.executed") - before
    })
}

/// Host instructions/sec for a wide store loop: four stores per
/// iteration spread over four cache lines, no waiters armed — the
/// batched memory-superblock path with a multi-line data footprint
/// (the store-loop bench above keeps both stores on one line and a
/// populated filter; this one isolates the line-footprint machinery).
fn bench_store_run(window_ms: u64) -> f64 {
    let mut m = Machine::new(MachineConfig::small());
    let prog = assemble(
        ".base 0x10000\n\
         entry: movi r1, 0x20000\n\
         loop:  st r1, r1, 0\n\
         st r1, r1, 64\n\
         st r1, r1, 128\n\
         st r1, r1, 192\n\
         jmp loop\n",
    )
    .expect("store-run program");
    let t = m.load_program(0, &prog).expect("load");
    m.start_thread(t);
    measure(window_ms, || {
        let before = m.counters().get("inst.executed");
        m.run_for(Cycles(200_000));
        m.counters().get("inst.executed") - before
    })
}

/// Host instructions/sec draining a 16-entry ring: each iteration masks
/// the index, loads the slot, increments it, and stores it back — the
/// load+store mix with data-dependent addressing (a two-line footprint
/// whose lines the block must resolve at run time).
fn bench_ring_drain(window_ms: u64) -> f64 {
    let mut m = Machine::new(MachineConfig::small());
    let prog = assemble(
        ".base 0x10000\n\
         entry: movi r1, 0x20000\n\
         movi r2, 0\n\
         movi r7, 15\n\
         movi r8, 3\n\
         loop:  and r3, r2, r7\n\
         shl r3, r3, r8\n\
         add r3, r3, r1\n\
         ld r4, r3, 0\n\
         addi r4, r4, 1\n\
         st r4, r3, 0\n\
         addi r2, r2, 1\n\
         jmp loop\n",
    )
    .expect("ring-drain program");
    let t = m.load_program(0, &prog).expect("load");
    m.start_thread(t);
    measure(window_ms, || {
        let before = m.counters().get("inst.executed");
        m.run_for(Cycles(200_000));
        m.counters().get("inst.executed") - before
    })
}

/// Best-case burst path: a single spinning thread on a single-slot core
/// with an **empty event horizon** — nothing is pending except the
/// slot's own `SlotFree`, so every dispatch runs a full `MAX_BURST`
/// batch and the queue round-trip cost is amortised over ~1024
/// instructions. The gap between this number and `bench_spin` (which
/// keeps a second SMT slot's retry event in play) is the cost of the
/// sibling-slot machinery, not of the burst loop itself.
fn bench_burst(window_ms: u64) -> f64 {
    let mut cfg = MachineConfig::small();
    cfg.smt_slots = 1;
    let mut m = spin_machine(cfg);
    measure(window_ms, || {
        let before = m.counters().get("inst.executed");
        m.run_for(Cycles(200_000));
        m.counters().get("inst.executed") - before
    })
}

/// Raw filter throughput: stores/sec against 64 armed entries, with a
/// mix of hitting and missing addresses (1 hit per 64 stores).
fn bench_filter(window_ms: u64, mut filter: impl MonitorFilter) -> f64 {
    for i in 0..64u64 {
        filter
            .arm(WatchId(i), PAddr(0x1000 + i * 64), 8)
            .expect("arm");
    }
    let mut out = Vec::new();
    let mut rng = Rng::seed_from(0xb0a7_10ad);
    measure(window_ms, || {
        let mut n = 0u64;
        for _ in 0..1024 {
            // Mostly-miss address pattern: the common case on real
            // store streams (doorbells and mailboxes are rare).
            let addr = 0x100_000 + (rng.next_u64() & 0xffff8);
            out.clear();
            filter.on_store(PAddr(addr), 8, &mut out);
            let hit = 0x1000 + (rng.next_u64() & 63) * 64;
            out.clear();
            filter.on_store(PAddr(hit - 8), 8, &mut out);
            n += 2;
        }
        n
    })
}

/// EventQueue churn: schedule/pop with a 1-in-8 cancel mix.
fn bench_events(window_ms: u64) -> f64 {
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut rng = Rng::seed_from(0x5eed);
    let mut now = Cycles::ZERO;
    for i in 0..1024 {
        q.schedule(Cycles(i), i);
    }
    measure(window_ms, || {
        let mut n = 0u64;
        for _ in 0..1024 {
            let (at, v) = q.pop().expect("queue never drains");
            now = now.max(at);
            let tok = q.schedule(now + Cycles(1 + (rng.next_u64() & 255)), v);
            if rng.next_u64() & 7 == 0 {
                q.cancel(tok);
                q.schedule(now + Cycles(1 + (rng.next_u64() & 255)), v);
            }
            n += 1;
        }
        n
    })
}

/// One measured bench with its committed baseline: the single source
/// the `benches*`, `baseline` and `speedup` JSON sections all iterate,
/// so no section can omit a measured bench.
struct Row {
    /// JSON key in `benches*`/`baseline` (e.g. `spin_insts_per_sec`).
    key: &'static str,
    /// JSON key in `speedup` and human label prefix.
    short: &'static str,
    /// Human-readable label for the progress log.
    label: &'static str,
    /// Unit suffix for the progress log.
    unit: &'static str,
    /// Committed baseline (see [`baseline`]); `None` for benches that
    /// postdate the PR-5 baseline set — they get no `baseline`/`speedup`
    /// entry rather than a made-up denominator.
    baseline: Option<f64>,
    /// Minimum of the three measured windows, ops/sec.
    min: f64,
    /// Median of the three measured windows, ops/sec — the comparison
    /// number (also emitted as the legacy `benches` section).
    median: f64,
}

fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.0}")
    } else {
        "null".to_owned()
    }
}

fn main() {
    let opts = parse_args();
    let window_ms: u64 = if opts.quick { 40 } else { 400 };

    eprintln!("switchless-bench: window {window_ms} ms/bench, best of 3");
    macro_rules! row {
        ($key:literal, $short:literal, $label:literal, $unit:literal, $base:expr, $bench:expr) => {{
            let (min, median) = best3(|| $bench);
            Row {
                key: $key,
                short: $short,
                label: $label,
                unit: $unit,
                baseline: $base,
                min,
                median,
            }
        }};
    }
    let rows: Vec<Row> = vec![
        row!(
            "spin_insts_per_sec",
            "spin",
            "spin loop",
            "insts/sec",
            Some(baseline::SPIN_INSTS_PER_SEC),
            bench_spin(window_ms)
        ),
        row!(
            "burst_insts_per_sec",
            "burst",
            "burst (1 slot)",
            "insts/sec",
            Some(baseline::BURST_INSTS_PER_SEC),
            bench_burst(window_ms)
        ),
        // The PR-5 spin path *is* the no-superblock path: same code,
        // same machine, blocks not yet invented.
        row!(
            "spin_nosb_insts_per_sec",
            "spin_nosb",
            "spin (no superblocks)",
            "insts/sec",
            Some(baseline::SPIN_INSTS_PER_SEC),
            bench_spin_nosb(window_ms)
        ),
        row!(
            "store_loop_insts_per_sec",
            "store_loop",
            "store loop (cam)",
            "insts/sec",
            Some(baseline::STORE_LOOP_INSTS_PER_SEC),
            bench_store_loop(window_ms, MonitorKind::Cam { capacity: 1024 })
        ),
        row!(
            "store_run_insts_per_sec",
            "store_run",
            "store run (4 lines)",
            "insts/sec",
            None,
            bench_store_run(window_ms)
        ),
        row!(
            "ring_drain_insts_per_sec",
            "ring_drain",
            "ring drain (ld+st)",
            "insts/sec",
            None,
            bench_ring_drain(window_ms)
        ),
        row!(
            "cam_stores_per_sec",
            "cam",
            "cam filter",
            "stores/sec",
            Some(baseline::CAM_STORES_PER_SEC),
            bench_filter(window_ms, CamFilter::new(1024))
        ),
        row!(
            "hash_stores_per_sec",
            "hash",
            "hash filter",
            "stores/sec",
            Some(baseline::HASH_STORES_PER_SEC),
            bench_filter(window_ms, HashFilter::new())
        ),
        row!(
            "event_queue_events_per_sec",
            "events",
            "event queue",
            "events/sec",
            Some(baseline::EVENTS_PER_SEC),
            bench_events(window_ms)
        ),
    ];
    for r in &rows {
        eprintln!(
            "  {:<22} {:>14.0} {} (min {:.0})",
            format!("{}:", r.label),
            r.median,
            r.unit,
            r.min
        );
    }

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"switchless-bench/v1\",\n  \"pr\": 10,\n");
    json.push_str(&format!(
        "  \"quick\": {},\n  \"window_ms\": {window_ms},\n  \"samples\": 3,\n",
        opts.quick
    ));
    // `benches` (the legacy comparison section) equals `benches_median`;
    // both are emitted so older readers need no change and newer ones
    // can be explicit about which statistic they compare.
    for section in ["benches", "benches_median"] {
        json.push_str(&format!("  \"{section}\": {{\n"));
        for (i, r) in rows.iter().enumerate() {
            let sep = if i + 1 < rows.len() { "," } else { "" };
            json.push_str(&format!("    \"{}\": {}{sep}\n", r.key, json_num(r.median)));
        }
        json.push_str("  },\n");
    }
    json.push_str("  \"benches_min\": {\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        json.push_str(&format!("    \"{}\": {}{sep}\n", r.key, json_num(r.min)));
    }
    json.push_str("  },\n  \"baseline\": {\n");
    json.push_str(&format!("    \"note\": \"{}\"", baseline::NOTE));
    for r in rows.iter().filter(|r| r.baseline.is_some()) {
        json.push_str(&format!(
            ",\n    \"{}\": {}",
            r.key,
            json_num(r.baseline.expect("filtered"))
        ));
    }
    json.push_str("\n  },\n  \"speedup\": {\n");
    let with_base: Vec<&Row> = rows.iter().filter(|r| r.baseline.is_some()).collect();
    for (i, r) in with_base.iter().enumerate() {
        let sep = if i + 1 < with_base.len() { "," } else { "" };
        json.push_str(&format!(
            "    \"{}\": {:.2}{sep}\n",
            r.short,
            r.median / r.baseline.expect("filtered")
        ));
    }
    json.push_str("  }\n}\n");
    std::fs::write(&opts.out, json).expect("write BENCH json");
    eprintln!("wrote {}", opts.out);
}

//! `switchless-bench` — dependency-free host-throughput benchmark.
//!
//! Criterion (behind the `criterion` feature) is for local deep-dives;
//! this binary is the tier-1-buildable complement: it measures how fast
//! the *host* executes the simulator's hot paths and writes the numbers
//! to a `BENCH_<n>.json` at the repo root so the perf trajectory across
//! PRs has data points. Simulated-cycle results are untouched by
//! anything measured here — see "results/ bit-identical" in
//! EXPERIMENTS.md.
//!
//! The artifact is emitted by iterating one row table, so every
//! measured bench always carries a `baseline` and `speedup` entry —
//! a bench cannot be added to the measurement list without also being
//! auditable from the JSON alone (BENCH_5.json omitted the burst
//! bench's baseline exactly that way).
//!
//! Usage:
//!
//! ```text
//! switchless-bench [--quick] [--out PATH]
//! ```
//!
//! `--quick` shrinks each measurement window (CI smoke); `--out` defaults
//! to `BENCH_9.json` in the current directory.

use std::time::Instant;

use switchless_core::machine::{Machine, MachineConfig, MonitorKind};
use switchless_isa::asm::assemble;
use switchless_mem::monitor::{CamFilter, HashFilter, MonitorFilter, WatchId};
use switchless_mem::PAddr;
use switchless_sim::event::EventQueue;
use switchless_sim::rng::Rng;
use switchless_sim::time::Cycles;

/// PR-5 numbers (commit 8c8e597, BENCH_5.json), measured on this
/// container with the same windows. They stay in the JSON so the
/// speedup of the superblock engine is auditable from the artifact
/// alone.
mod baseline {
    /// Spin-loop microbench, host instructions/sec.
    pub const SPIN_INSTS_PER_SEC: f64 = 56_841_385.0;
    /// Single-slot burst microbench, host instructions/sec.
    pub const BURST_INSTS_PER_SEC: f64 = 58_548_894.0;
    /// Machine-level store loop (full `after_store` path), insts/sec.
    pub const STORE_LOOP_INSTS_PER_SEC: f64 = 24_364_402.0;
    /// Raw `CamFilter::on_store`, stores/sec (64 armed entries).
    pub const CAM_STORES_PER_SEC: f64 = 47_785_546.0;
    /// Raw `HashFilter::on_store`, stores/sec (64 armed lines).
    pub const HASH_STORES_PER_SEC: f64 = 58_207_769.0;
    /// `EventQueue` schedule/pop/cancel churn, events/sec.
    pub const EVENTS_PER_SEC: f64 = 26_815_347.0;
    /// Where the numbers came from.
    pub const NOTE: &str = "PR 5 (commit 8c8e597, BENCH_5.json), full windows";
}

struct Opts {
    quick: bool,
    out: String,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        quick: false,
        out: "BENCH_9.json".to_owned(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--out" => {
                opts.out = args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                });
            }
            other => {
                if let Some(p) = other.strip_prefix("--out=") {
                    opts.out = p.to_owned();
                } else {
                    eprintln!("usage: switchless-bench [--quick] [--out PATH]");
                    std::process::exit(2);
                }
            }
        }
    }
    opts
}

/// Runs `step` (which reports how many operations it performed) until
/// `window_ms` of host time has elapsed, and returns operations/sec.
fn measure(window_ms: u64, mut step: impl FnMut() -> u64) -> f64 {
    // Warmup: one step, unmeasured.
    step();
    let start = Instant::now();
    let mut ops = 0u64;
    loop {
        ops += step();
        let elapsed = start.elapsed();
        if elapsed.as_millis() as u64 >= window_ms {
            return ops as f64 / elapsed.as_secs_f64();
        }
    }
}

/// The spin machine shared by the spin-family benches: a pure ALU loop
/// whose 4-instruction body unrolls into one 256-instruction
/// superblock.
fn spin_machine(cfg: MachineConfig) -> Machine {
    let mut m = Machine::new(cfg);
    let prog = assemble(
        ".base 0x10000\n\
         entry: movi r1, 0\n\
         loop:  addi r1, r1, 1\n\
         addi r2, r1, 3\n\
         xor r3, r2, r1\n\
         jmp loop\n",
    )
    .expect("spin program");
    let t = m.load_program(0, &prog).expect("load");
    m.start_thread(t);
    m
}

/// Host instructions/sec executing a pure ALU spin loop — the
/// superblock + dispatch-path microbench.
fn bench_spin(window_ms: u64) -> f64 {
    let mut m = spin_machine(MachineConfig::small());
    measure(window_ms, || {
        let before = m.counters().get("inst.executed");
        m.run_for(Cycles(200_000));
        m.counters().get("inst.executed") - before
    })
}

/// `bench_spin` with the superblock engine disabled: the per-inst
/// single-step burst path. Keeping this measured guards the fallback
/// path (everything that is not a hot inert loop) against regressions
/// the superblock numbers would mask.
fn bench_spin_nosb(window_ms: u64) -> f64 {
    let mut m = spin_machine(MachineConfig::small());
    m.set_superblocks(false);
    measure(window_ms, || {
        let before = m.counters().get("inst.executed");
        m.run_for(Cycles(200_000));
        m.counters().get("inst.executed") - before
    })
}

/// Host instructions/sec for a store loop: every iteration goes through
/// `data_access`, the monitor filter, and the mmio-hook scan — the
/// allocation-free store-path microbench. 32 parked waiters keep the
/// filter populated (their watches never match the stored address).
fn bench_store_loop(window_ms: u64, kind: MonitorKind) -> f64 {
    let mut cfg = MachineConfig::small();
    cfg.monitor = kind;
    let mut m = Machine::new(cfg);
    let waiter = assemble(
        ".base 0x30000\n\
         entry: monitor r1\n\
         mwait\n\
         halt\n",
    )
    .expect("waiter program");
    m.load_image(&waiter).expect("load waiter");
    for i in 0..32u64 {
        let w = m.spawn_at(0, 0x30000, true).expect("spawn waiter");
        m.set_thread_reg(w, 1, 0x8000 + i * 64);
        m.start_thread(w);
    }
    let prog = assemble(
        ".base 0x10000\n\
         entry: movi r1, 0x20000\n\
         loop:  st r1, r1, 0\n\
         st r1, r1, 8\n\
         jmp loop\n",
    )
    .expect("store program");
    let t = m.load_program(0, &prog).expect("load");
    m.start_thread(t);
    // Park the waiters before timing.
    m.run_for(Cycles(10_000));
    measure(window_ms, || {
        let before = m.counters().get("inst.executed");
        m.run_for(Cycles(200_000));
        m.counters().get("inst.executed") - before
    })
}

/// Best-case burst path: a single spinning thread on a single-slot core
/// with an **empty event horizon** — nothing is pending except the
/// slot's own `SlotFree`, so every dispatch runs a full `MAX_BURST`
/// batch and the queue round-trip cost is amortised over ~1024
/// instructions. The gap between this number and `bench_spin` (which
/// keeps a second SMT slot's retry event in play) is the cost of the
/// sibling-slot machinery, not of the burst loop itself.
fn bench_burst(window_ms: u64) -> f64 {
    let mut cfg = MachineConfig::small();
    cfg.smt_slots = 1;
    let mut m = spin_machine(cfg);
    measure(window_ms, || {
        let before = m.counters().get("inst.executed");
        m.run_for(Cycles(200_000));
        m.counters().get("inst.executed") - before
    })
}

/// Raw filter throughput: stores/sec against 64 armed entries, with a
/// mix of hitting and missing addresses (1 hit per 64 stores).
fn bench_filter(window_ms: u64, mut filter: impl MonitorFilter) -> f64 {
    for i in 0..64u64 {
        filter
            .arm(WatchId(i), PAddr(0x1000 + i * 64), 8)
            .expect("arm");
    }
    let mut out = Vec::new();
    let mut rng = Rng::seed_from(0xb0a7_10ad);
    measure(window_ms, || {
        let mut n = 0u64;
        for _ in 0..1024 {
            // Mostly-miss address pattern: the common case on real
            // store streams (doorbells and mailboxes are rare).
            let addr = 0x100_000 + (rng.next_u64() & 0xffff8);
            out.clear();
            filter.on_store(PAddr(addr), 8, &mut out);
            let hit = 0x1000 + (rng.next_u64() & 63) * 64;
            out.clear();
            filter.on_store(PAddr(hit - 8), 8, &mut out);
            n += 2;
        }
        n
    })
}

/// EventQueue churn: schedule/pop with a 1-in-8 cancel mix.
fn bench_events(window_ms: u64) -> f64 {
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut rng = Rng::seed_from(0x5eed);
    let mut now = Cycles::ZERO;
    for i in 0..1024 {
        q.schedule(Cycles(i), i);
    }
    measure(window_ms, || {
        let mut n = 0u64;
        for _ in 0..1024 {
            let (at, v) = q.pop().expect("queue never drains");
            now = now.max(at);
            let tok = q.schedule(now + Cycles(1 + (rng.next_u64() & 255)), v);
            if rng.next_u64() & 7 == 0 {
                q.cancel(tok);
                q.schedule(now + Cycles(1 + (rng.next_u64() & 255)), v);
            }
            n += 1;
        }
        n
    })
}

/// One measured bench with its committed baseline: the single source
/// the `benches`, `baseline` and `speedup` JSON sections all iterate,
/// so no section can omit a measured bench.
struct Row {
    /// JSON key in `benches`/`baseline` (e.g. `spin_insts_per_sec`).
    key: &'static str,
    /// JSON key in `speedup` and human label prefix.
    short: &'static str,
    /// Human-readable label for the progress log.
    label: &'static str,
    /// Unit suffix for the progress log.
    unit: &'static str,
    /// Committed baseline (see [`baseline`]).
    baseline: f64,
    /// Measured ops/sec.
    measured: f64,
}

fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.0}")
    } else {
        "null".to_owned()
    }
}

fn main() {
    let opts = parse_args();
    let window_ms: u64 = if opts.quick { 40 } else { 400 };

    eprintln!("switchless-bench: window {window_ms} ms/bench");
    let mut rows: Vec<Row> = vec![
        Row {
            key: "spin_insts_per_sec",
            short: "spin",
            label: "spin loop",
            unit: "insts/sec",
            baseline: baseline::SPIN_INSTS_PER_SEC,
            measured: bench_spin(window_ms),
        },
        Row {
            key: "burst_insts_per_sec",
            short: "burst",
            label: "burst (1 slot)",
            unit: "insts/sec",
            baseline: baseline::BURST_INSTS_PER_SEC,
            measured: bench_burst(window_ms),
        },
        Row {
            key: "spin_nosb_insts_per_sec",
            short: "spin_nosb",
            label: "spin (no superblocks)",
            unit: "insts/sec",
            // The PR-5 spin path *is* the no-superblock path: same code,
            // same machine, blocks not yet invented.
            baseline: baseline::SPIN_INSTS_PER_SEC,
            measured: bench_spin_nosb(window_ms),
        },
        Row {
            key: "store_loop_insts_per_sec",
            short: "store_loop",
            label: "store loop (cam)",
            unit: "insts/sec",
            baseline: baseline::STORE_LOOP_INSTS_PER_SEC,
            measured: bench_store_loop(window_ms, MonitorKind::Cam { capacity: 1024 }),
        },
        Row {
            key: "cam_stores_per_sec",
            short: "cam",
            label: "cam filter",
            unit: "stores/sec",
            baseline: baseline::CAM_STORES_PER_SEC,
            measured: bench_filter(window_ms, CamFilter::new(1024)),
        },
        Row {
            key: "hash_stores_per_sec",
            short: "hash",
            label: "hash filter",
            unit: "stores/sec",
            baseline: baseline::HASH_STORES_PER_SEC,
            measured: bench_filter(window_ms, HashFilter::new()),
        },
        Row {
            key: "event_queue_events_per_sec",
            short: "events",
            label: "event queue",
            unit: "events/sec",
            baseline: baseline::EVENTS_PER_SEC,
            measured: bench_events(window_ms),
        },
    ];
    for r in &mut rows {
        eprintln!(
            "  {:<22} {:>14.0} {}",
            format!("{}:", r.label),
            r.measured,
            r.unit
        );
    }

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"switchless-bench/v1\",\n  \"pr\": 9,\n");
    json.push_str(&format!(
        "  \"quick\": {},\n  \"window_ms\": {window_ms},\n",
        opts.quick
    ));
    json.push_str("  \"benches\": {\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    \"{}\": {}{sep}\n",
            r.key,
            json_num(r.measured)
        ));
    }
    json.push_str("  },\n  \"baseline\": {\n");
    json.push_str(&format!("    \"note\": \"{}\",\n", baseline::NOTE));
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    \"{}\": {}{sep}\n",
            r.key,
            json_num(r.baseline)
        ));
    }
    json.push_str("  },\n  \"speedup\": {\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    \"{}\": {:.2}{sep}\n",
            r.short,
            r.measured / r.baseline
        ));
    }
    json.push_str("  }\n}\n");
    std::fs::write(&opts.out, json).expect("write BENCH json");
    eprintln!("wrote {}", opts.out);
}

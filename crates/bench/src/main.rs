//! `switchless-bench` — dependency-free host-throughput benchmark.
//!
//! Criterion (behind the `criterion` feature) is for local deep-dives;
//! this binary is the tier-1-buildable complement: it measures how fast
//! the *host* executes the simulator's hot paths and writes the numbers
//! to a `BENCH_<n>.json` at the repo root so the perf trajectory across
//! PRs has data points. Simulated-cycle results are untouched by
//! anything measured here — see "results/ bit-identical" in
//! EXPERIMENTS.md.
//!
//! Usage:
//!
//! ```text
//! switchless-bench [--quick] [--out PATH]
//! ```
//!
//! `--quick` shrinks each measurement window (CI smoke); `--out` defaults
//! to `BENCH_5.json` in the current directory.

use std::time::Instant;

use switchless_core::machine::{Machine, MachineConfig, MonitorKind};
use switchless_isa::asm::assemble;
use switchless_mem::monitor::{CamFilter, HashFilter, MonitorFilter, WatchId};
use switchless_mem::PAddr;
use switchless_sim::event::EventQueue;
use switchless_sim::rng::Rng;
use switchless_sim::time::Cycles;

/// PR-4 numbers (commit 8883f55, BENCH_4.json), measured on this
/// container with the same windows. They stay in the JSON so the
/// speedup of the burst execution engine is auditable from the artifact
/// alone.
mod baseline {
    /// Spin-loop microbench, host instructions/sec.
    pub const SPIN_INSTS_PER_SEC: f64 = 12_473_113.0;
    /// Machine-level store loop (full `after_store` path), insts/sec.
    pub const STORE_LOOP_INSTS_PER_SEC: f64 = 9_118_260.0;
    /// Raw `CamFilter::on_store`, stores/sec (64 armed entries).
    pub const CAM_STORES_PER_SEC: f64 = 50_727_641.0;
    /// Raw `HashFilter::on_store`, stores/sec (64 armed lines).
    pub const HASH_STORES_PER_SEC: f64 = 59_536_095.0;
    /// `EventQueue` schedule/pop/cancel churn, events/sec.
    pub const EVENTS_PER_SEC: f64 = 28_415_530.0;
    /// Where the numbers came from.
    pub const NOTE: &str = "PR 4 (commit 8883f55, BENCH_4.json), full windows";
}

struct Opts {
    quick: bool,
    out: String,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        quick: false,
        out: "BENCH_5.json".to_owned(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--out" => {
                opts.out = args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                });
            }
            other => {
                if let Some(p) = other.strip_prefix("--out=") {
                    opts.out = p.to_owned();
                } else {
                    eprintln!("usage: switchless-bench [--quick] [--out PATH]");
                    std::process::exit(2);
                }
            }
        }
    }
    opts
}

/// Runs `step` (which reports how many operations it performed) until
/// `window_ms` of host time has elapsed, and returns operations/sec.
fn measure(window_ms: u64, mut step: impl FnMut() -> u64) -> f64 {
    // Warmup: one step, unmeasured.
    step();
    let start = Instant::now();
    let mut ops = 0u64;
    loop {
        ops += step();
        let elapsed = start.elapsed();
        if elapsed.as_millis() as u64 >= window_ms {
            return ops as f64 / elapsed.as_secs_f64();
        }
    }
}

/// Host instructions/sec executing a pure ALU spin loop — the
/// decoded-instruction-cache + dispatch-path microbench.
fn bench_spin(window_ms: u64) -> f64 {
    let mut m = Machine::new(MachineConfig::small());
    let prog = assemble(
        ".base 0x10000\n\
         entry: movi r1, 0\n\
         loop:  addi r1, r1, 1\n\
         addi r2, r1, 3\n\
         xor r3, r2, r1\n\
         jmp loop\n",
    )
    .expect("spin program");
    let t = m.load_program(0, &prog).expect("load");
    m.start_thread(t);
    measure(window_ms, || {
        let before = m.counters().get("inst.executed");
        m.run_for(Cycles(200_000));
        m.counters().get("inst.executed") - before
    })
}

/// Host instructions/sec for a store loop: every iteration goes through
/// `data_access`, the monitor filter, and the mmio-hook scan — the
/// allocation-free store-path microbench. 32 parked waiters keep the
/// filter populated (their watches never match the stored address).
fn bench_store_loop(window_ms: u64, kind: MonitorKind) -> f64 {
    let mut cfg = MachineConfig::small();
    cfg.monitor = kind;
    let mut m = Machine::new(cfg);
    let waiter = assemble(
        ".base 0x30000\n\
         entry: monitor r1\n\
         mwait\n\
         halt\n",
    )
    .expect("waiter program");
    m.load_image(&waiter).expect("load waiter");
    for i in 0..32u64 {
        let w = m.spawn_at(0, 0x30000, true).expect("spawn waiter");
        m.set_thread_reg(w, 1, 0x8000 + i * 64);
        m.start_thread(w);
    }
    let prog = assemble(
        ".base 0x10000\n\
         entry: movi r1, 0x20000\n\
         loop:  st r1, r1, 0\n\
         st r1, r1, 8\n\
         jmp loop\n",
    )
    .expect("store program");
    let t = m.load_program(0, &prog).expect("load");
    m.start_thread(t);
    // Park the waiters before timing.
    m.run_for(Cycles(10_000));
    measure(window_ms, || {
        let before = m.counters().get("inst.executed");
        m.run_for(Cycles(200_000));
        m.counters().get("inst.executed") - before
    })
}

/// Best-case burst path: a single spinning thread on a single-slot core
/// with an **empty event horizon** — nothing is pending except the
/// slot's own `SlotFree`, so every dispatch runs a full `MAX_BURST`
/// batch and the queue round-trip cost is amortised over ~1024
/// instructions. The gap between this number and `bench_spin` (which
/// keeps a second SMT slot's retry event in play) is the cost of the
/// sibling-slot machinery, not of the burst loop itself.
fn bench_burst(window_ms: u64) -> f64 {
    let mut cfg = MachineConfig::small();
    cfg.smt_slots = 1;
    let mut m = Machine::new(cfg);
    let prog = assemble(
        ".base 0x10000\n\
         entry: movi r1, 0\n\
         loop:  addi r1, r1, 1\n\
         addi r2, r1, 3\n\
         xor r3, r2, r1\n\
         jmp loop\n",
    )
    .expect("spin program");
    let t = m.load_program(0, &prog).expect("load");
    m.start_thread(t);
    measure(window_ms, || {
        let before = m.counters().get("inst.executed");
        m.run_for(Cycles(200_000));
        m.counters().get("inst.executed") - before
    })
}

/// Raw filter throughput: stores/sec against 64 armed entries, with a
/// mix of hitting and missing addresses (1 hit per 64 stores).
fn bench_filter(window_ms: u64, mut filter: impl MonitorFilter) -> f64 {
    for i in 0..64u64 {
        filter
            .arm(WatchId(i), PAddr(0x1000 + i * 64), 8)
            .expect("arm");
    }
    let mut out = Vec::new();
    let mut rng = Rng::seed_from(0xb0a7_10ad);
    measure(window_ms, || {
        let mut n = 0u64;
        for _ in 0..1024 {
            // Mostly-miss address pattern: the common case on real
            // store streams (doorbells and mailboxes are rare).
            let addr = 0x100_000 + (rng.next_u64() & 0xffff8);
            out.clear();
            filter.on_store(PAddr(addr), 8, &mut out);
            let hit = 0x1000 + (rng.next_u64() & 63) * 64;
            out.clear();
            filter.on_store(PAddr(hit - 8), 8, &mut out);
            n += 2;
        }
        n
    })
}

/// EventQueue churn: schedule/pop with a 1-in-8 cancel mix.
fn bench_events(window_ms: u64) -> f64 {
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut rng = Rng::seed_from(0x5eed);
    let mut now = Cycles::ZERO;
    for i in 0..1024 {
        q.schedule(Cycles(i), i);
    }
    measure(window_ms, || {
        let mut n = 0u64;
        for _ in 0..1024 {
            let (at, v) = q.pop().expect("queue never drains");
            now = now.max(at);
            let tok = q.schedule(now + Cycles(1 + (rng.next_u64() & 255)), v);
            if rng.next_u64() & 7 == 0 {
                q.cancel(tok);
                q.schedule(now + Cycles(1 + (rng.next_u64() & 255)), v);
            }
            n += 1;
        }
        n
    })
}

fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.0}")
    } else {
        "null".to_owned()
    }
}

fn main() {
    let opts = parse_args();
    let window_ms: u64 = if opts.quick { 40 } else { 400 };

    eprintln!("switchless-bench: window {window_ms} ms/bench");
    let spin = bench_spin(window_ms);
    eprintln!("  spin loop:        {spin:>14.0} insts/sec");
    let burst = bench_burst(window_ms);
    eprintln!("  burst (1 slot):   {burst:>14.0} insts/sec");
    let store_loop = bench_store_loop(window_ms, MonitorKind::Cam { capacity: 1024 });
    eprintln!("  store loop (cam): {store_loop:>14.0} insts/sec");
    let cam = bench_filter(window_ms, CamFilter::new(1024));
    eprintln!("  cam filter:       {cam:>14.0} stores/sec");
    let hash = bench_filter(window_ms, HashFilter::new());
    eprintln!("  hash filter:      {hash:>14.0} stores/sec");
    let events = bench_events(window_ms);
    eprintln!("  event queue:      {events:>14.0} events/sec");

    let json = format!(
        "{{\n  \"schema\": \"switchless-bench/v1\",\n  \"pr\": 5,\n  \"quick\": {},\n  \"window_ms\": {},\n  \"benches\": {{\n    \"spin_insts_per_sec\": {},\n    \"burst_insts_per_sec\": {},\n    \"store_loop_insts_per_sec\": {},\n    \"cam_stores_per_sec\": {},\n    \"hash_stores_per_sec\": {},\n    \"event_queue_events_per_sec\": {}\n  }},\n  \"baseline\": {{\n    \"note\": \"{}\",\n    \"spin_insts_per_sec\": {},\n    \"store_loop_insts_per_sec\": {},\n    \"cam_stores_per_sec\": {},\n    \"hash_stores_per_sec\": {},\n    \"event_queue_events_per_sec\": {}\n  }},\n  \"speedup\": {{\n    \"spin\": {:.2},\n    \"store_loop\": {:.2},\n    \"cam\": {:.2},\n    \"hash\": {:.2},\n    \"events\": {:.2}\n  }}\n}}\n",
        opts.quick,
        window_ms,
        json_num(spin),
        json_num(burst),
        json_num(store_loop),
        json_num(cam),
        json_num(hash),
        json_num(events),
        baseline::NOTE,
        json_num(baseline::SPIN_INSTS_PER_SEC),
        json_num(baseline::STORE_LOOP_INSTS_PER_SEC),
        json_num(baseline::CAM_STORES_PER_SEC),
        json_num(baseline::HASH_STORES_PER_SEC),
        json_num(baseline::EVENTS_PER_SEC),
        spin / baseline::SPIN_INSTS_PER_SEC,
        store_loop / baseline::STORE_LOOP_INSTS_PER_SEC,
        cam / baseline::CAM_STORES_PER_SEC,
        hash / baseline::HASH_STORES_PER_SEC,
        events / baseline::EVENTS_PER_SEC,
    );
    std::fs::write(&opts.out, json).expect("write BENCH json");
    eprintln!("wrote {}", opts.out);
}

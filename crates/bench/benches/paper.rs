//! Criterion benchmarks, one group per reproduced table/figure.
//!
//! These measure the *simulator's host-side* performance of each
//! experiment's critical operation (the simulated-time results live in
//! the experiment harness; `cargo run -p switchless-experiments`). Keeping
//! both lets regressions in either the model's speed or its behaviour
//! show up in CI.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use switchless_core::machine::{Machine, MachineConfig, TrapMode};
use switchless_core::perm::{Perms, TdtEntry};
use switchless_core::sched::{HwScheduler, SchedPolicy};
use switchless_core::store::{StateStore, StoreConfig};
use switchless_core::tid::{Ptid, ThreadState, Vtid};
use switchless_dev::fabric::Fabric;
use switchless_dev::nic::{Nic, NicConfig};
use switchless_isa::asm::assemble;
use switchless_kern::ioengine::IoEngine;
use switchless_kern::microkernel::Microkernel;
use switchless_kern::syscall_svc::SyscallService;
use switchless_legacy::costs::LegacyCosts;
use switchless_legacy::idt::Idt;
use switchless_mem::hierarchy::{AccessKind, Hierarchy, HierarchyConfig};
use switchless_mem::monitor::{CamFilter, HashFilter, MonitorFilter, WatchId};
use switchless_mem::{PAddr, PartitionId};
use switchless_sim::rng::Rng;
use switchless_sim::time::Cycles;
use switchless_wl::dist::ServiceDist;
use switchless_wl::queue::{Discipline, QueueConfig, QueueSim};
use switchless_wl::sweep::make_jobs;

/// T1: one TDT permission check through the machine (start via vtid).
fn bench_t1_tdt_enforcement(c: &mut Criterion) {
    let mut m = Machine::new(MachineConfig::small());
    let spin = assemble(".base 0x20000\nentry: jmp entry\n").unwrap();
    m.load_image(&spin).unwrap();
    let tgt = m.spawn_at(0, 0x20000, false).unwrap();
    let driver = assemble(".base 0x10000\nentry:\nloop:\n start 0\n jmp loop\n").unwrap();
    let d = m.load_program(0, &driver).unwrap();
    let tdt = m.alloc(64);
    m.write_tdt_entry(tdt, Vtid(0), TdtEntry::new(tgt.ptid, Perms::ALL));
    m.set_thread_tdtr(d, tdt);
    m.start_thread(d);
    c.bench_function("t1_tdt_checked_start", |b| {
        b.iter(|| m.run_for(Cycles(1_000)));
    });
}

/// T2/F8: state-store activation (placement + cost model).
fn bench_f8_state_store(c: &mut Criterion) {
    let mut s = StateStore::new(StoreConfig::default());
    let mut i = 0u32;
    c.bench_function("f8_store_activate", |b| {
        b.iter(|| {
            i = (i + 1) % 64;
            std::hint::black_box(s.activate(Ptid(i), (i % 8) as u8, 160))
        });
    });
}

/// F1: the full machine wake path — poke a mailbox, run to re-park.
fn bench_f1_wake_path(c: &mut Criterion) {
    let mut m = Machine::new(MachineConfig::small());
    let prog = assemble(
        r#"
        mbox: .word 0
        entry:
            movi r1, 0
        loop:
            monitor mbox
            ld r2, mbox
            bne r2, r1, serve
            mwait
            jmp loop
        serve:
            mov r1, r2
            jmp loop
        "#,
    )
    .unwrap();
    let mbox = prog.symbol("mbox").unwrap();
    let tid = m.load_program(0, &prog).unwrap();
    m.start_thread(tid);
    m.run_for(Cycles(20_000));
    let mut i = 0u64;
    c.bench_function("f1_mwait_wake_roundtrip", |b| {
        b.iter(|| {
            i += 1;
            m.poke_u64(mbox, i);
            m.run_for(Cycles(2_000));
        });
    });
    // Legacy comparison point: IDT delivery bookkeeping.
    let mut idt = Idt::new(LegacyCosts::default());
    idt.register(33, Cycles(500));
    let mut t = 0u64;
    c.bench_function("f1_legacy_idt_delivery", |b| {
        b.iter(|| {
            t += 10_000;
            std::hint::black_box(idt.raise(Cycles(t), 33))
        });
    });
}

/// F2/F3: one packet through the thread-per-request I/O engine.
fn bench_f2_io_engine(c: &mut Criterion) {
    let mut cfg = MachineConfig::small();
    cfg.ptids_per_core = 64;
    let mut m = Machine::new(cfg);
    let nic = Nic::attach(&mut m, NicConfig::default());
    let eng = IoEngine::install(&mut m, 0, &nic, 8, 0x40000).unwrap();
    m.run_for(Cycles(30_000));
    let mut seq = 0u64;
    c.bench_function("f2_packet_through_engine", |b| {
        b.iter(|| {
            let now = m.now();
            eng.note_packet(seq, now + Cycles(300), Cycles(2_000));
            nic.schedule_rx(&mut m, now, seq, &[0u8; 64]);
            seq += 1;
            m.run_for(Cycles(10_000));
        });
    });
    // (No post-assert: with a bench filter the timed closure may never
    // run, leaving the machine untouched.)
    let _ = eng.completed();
}

/// F4: syscall round trips, same-thread vs dedicated hardware thread.
fn bench_f4_syscalls(c: &mut Criterion) {
    // Same-thread trap design.
    let mut cfg = MachineConfig::small();
    cfg.trap = TrapMode::SameThread {
        syscall_cost: Cycles(300),
        vmexit_cost: Cycles(1500),
    };
    let mut m = Machine::new(cfg);
    let image = assemble(
        r#"
        .base 0x10000
        entry:
        loop:
            syscall 1
            jmp loop
        kernel:
            work 500
            movi r13, 0
            csrw mode, r13
            jr r14
        "#,
    )
    .unwrap();
    let tid = m.load_program(0, &image).unwrap();
    m.set_syscall_vector(image.symbol("kernel").unwrap());
    m.start_thread(tid);
    c.bench_function("f4_syscall_same_thread", |b| {
        b.iter(|| m.run_for(Cycles(5_000)));
    });

    // Dedicated hardware-thread service.
    let mut m2 = Machine::new(MachineConfig::small());
    let svc = SyscallService::install(&mut m2, 0, 1, 500, 0x40000).unwrap();
    let client = assemble(&svc.client_program(0, u32::MAX, 0x60000)).unwrap();
    let app = m2.load_program_user(0, &client).unwrap();
    m2.run_for(Cycles(20_000));
    m2.start_thread(app);
    c.bench_function("f4_syscall_hwt_service", |b| {
        b.iter(|| m2.run_for(Cycles(5_000)));
    });
}

/// F5: VM-exit handling through the unprivileged hypervisor.
fn bench_f5_vmexit(c: &mut Criterion) {
    use switchless_kern::hypervisor::{exits, install, HvConfig};
    let mut m = Machine::new(MachineConfig::small());
    let h = install(
        &mut m,
        0,
        HvConfig {
            guest_work: 100,
            hv_work: 200,
            kernel_work: 300,
            iters: u32::MAX,
            exit_num: exits::CPUID,
        },
    )
    .unwrap();
    c.bench_function("f5_vmexit_hwt_hypervisor", |b| {
        b.iter(|| m.run_for(Cycles(5_000)));
    });
    let _ = m.peek_u64(h.exits_word);
}

/// F6: one microkernel IPC round trip.
fn bench_f6_microkernel_ipc(c: &mut Criterion) {
    let mut m = Machine::new(MachineConfig::small());
    let mk = Microkernel::install(&mut m, 0, &[("svc", 500, false)], 0x40000).unwrap();
    let client = assemble(&mk.client_program(0, u32::MAX, 0x60000)).unwrap();
    let app = m.load_program_user(0, &client).unwrap();
    m.run_for(Cycles(20_000));
    m.start_thread(app);
    c.bench_function("f6_microkernel_ipc", |b| {
        b.iter(|| m.run_for(Cycles(5_000)));
    });
    let _ = mk.ops(&m, 0);
}

/// F7: a queueing sweep point under bimodal load (3 designs).
fn bench_f7_queue_sweep_point(c: &mut Criterion) {
    let dist = ServiceDist::Bimodal {
        p_short: 0.995,
        short: 3_000,
        long: 300_000,
    };
    let mut rng = Rng::seed_from(1);
    let jobs = make_jobs(&mut rng, &dist, 2, 0.7, 3_000);
    for (name, cfg) in [
        (
            "f7_queue_fcfs",
            QueueConfig {
                servers: 2,
                discipline: Discipline::Fcfs,
                wakeup_overhead: Cycles(150),
                dispatch_overhead: Cycles::ZERO,
            },
        ),
        (
            "f7_queue_hwt_ps",
            QueueConfig {
                servers: 2,
                discipline: Discipline::Rr {
                    quantum: Cycles(200),
                },
                wakeup_overhead: Cycles(40),
                dispatch_overhead: Cycles::ZERO,
            },
        ),
    ] {
        c.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(QueueSim::run(&cfg, &jobs, Cycles::ZERO)));
        });
    }
}

/// F9: a hardware-scheduler pick under load.
fn bench_f9_scheduler_pick(c: &mut Criterion) {
    let mut s = HwScheduler::new(SchedPolicy::Priority);
    for i in 0..256 {
        s.enqueue(Ptid(i), (i % 8) as u8);
    }
    c.bench_function("f9_hw_scheduler_pick", |b| {
        b.iter(|| std::hint::black_box(s.pick(|_| false)));
    });
}

/// F10: one access through the full cache hierarchy.
fn bench_f10_hierarchy_access(c: &mut Criterion) {
    let mut h = Hierarchy::new(1, HierarchyConfig::server());
    let mut addr = 0u64;
    c.bench_function("f10_hierarchy_access", |b| {
        b.iter(|| {
            addr = addr.wrapping_add(64) % (1 << 22);
            std::hint::black_box(h.access(
                Cycles(0),
                0,
                PAddr(addr),
                AccessKind::Read,
                PartitionId::DEFAULT,
            ))
        });
    });
}

/// F11: one blocking remote RPC through the fabric.
fn bench_f11_fabric_rpc(c: &mut Criterion) {
    let mut m = Machine::new(MachineConfig::small());
    let f = Fabric {
        one_way: Cycles(1_000),
    };
    let resp = m.alloc(64);
    let prog = assemble(&format!(
        r#"
        entry:
            movi r1, 0
        loop:
            addi r1, r1, 1
        wait:
            monitor {resp}
            ld r2, {resp}
            beq r2, r1, loop
            mwait
            jmp wait
        "#,
        resp = resp
    ))
    .unwrap();
    let tid = m.load_program(0, &prog).unwrap();
    m.start_thread(tid);
    m.run_for(Cycles(5_000));
    let mut i = 0u64;
    c.bench_function("f11_blocking_rpc", |b| {
        b.iter(|| {
            i += 1;
            let now = m.now();
            f.rpc(&mut m, now, Cycles(500), resp, i);
            m.run_for(Cycles(4_000));
        });
    });
    let _ = m.thread_state(tid) == ThreadState::Halted;
}

/// F12: monitor-filter store lookups, CAM vs hashed.
fn bench_f12_monitor_filters(c: &mut Criterion) {
    let mut cam = CamFilter::new(1024);
    let mut hash = HashFilter::new();
    for i in 0..512u64 {
        cam.arm(WatchId(i), PAddr(0x1000 + i * 64), 8).unwrap();
        hash.arm(WatchId(i), PAddr(0x1000 + i * 64), 8).unwrap();
    }
    let mut out = Vec::new();
    let mut a = 0u64;
    c.bench_function("f12_cam_on_store", |b| {
        b.iter(|| {
            a = (a + 8) % 0x10000;
            out.clear();
            std::hint::black_box(cam.on_store(PAddr(a), 8, &mut out))
        });
    });
    c.bench_function("f12_hash_on_store", |b| {
        b.iter(|| {
            a = (a + 8) % 0x10000;
            out.clear();
            std::hint::black_box(hash.on_store(PAddr(a), 8, &mut out))
        });
    });
}

/// F13/F14 + substrate: raw machine instruction throughput (how many
/// simulated instructions per host second the whole model sustains).
fn bench_machine_throughput(c: &mut Criterion) {
    let mut m = Machine::new(MachineConfig::small());
    let spin = assemble(".base 0x10000\nentry:\n movi r1, 0\nloop:\n addi r1, r1, 1\n jmp loop\n")
        .unwrap();
    let tid = m.load_program(0, &spin).unwrap();
    m.start_thread(tid);
    c.bench_function("machine_10k_cycles_alu_loop", |b| {
        b.iter(|| m.run_for(Cycles(10_000)));
    });
}

/// F15 + extensions: thread migration, fan-out RPC, and start/stop
/// time slicing.
fn bench_extensions(c: &mut Criterion) {
    // Migration round trips.
    let mut cfg = MachineConfig::small();
    cfg.cores = 2;
    let mut m = Machine::new(cfg);
    let spin = assemble(".base 0x10000\nentry: work 500\njmp entry\n").unwrap();
    let mut tid = m.load_program(0, &spin).unwrap();
    m.start_thread(tid);
    m.run_for(Cycles(10_000));
    c.bench_function("f15_migrate_round_trip", |b| {
        b.iter(|| {
            tid = m.migrate_thread(tid, 1 - tid.core).unwrap();
            m.run_for(Cycles(2_000));
        });
    });

    // Fan-out round (4 legs).
    use switchless_kern::distrt::{FanoutConfig, FanoutRt};
    let mut m2 = Machine::new(MachineConfig::small());
    let rt = FanoutRt::install(
        &mut m2,
        0,
        FanoutConfig {
            threads: 1,
            iters: u32::MAX,
            fanout: 4,
            local_work: 500,
            remote_service: Cycles(500),
            fabric: Fabric {
                one_way: Cycles(500),
            },
        },
        0x40000,
    )
    .unwrap();
    c.bench_function("f11_fanout_round_4_legs", |b| {
        b.iter(|| m2.run_for(Cycles(4_000)));
    });
    let _ = rt.issued();

    // One time slice (stop + start through the TDT).
    use switchless_kern::timeslice;
    let mut m3 = Machine::new(MachineConfig::small());
    let ts = timeslice::install(&mut m3, 0, 4, 0x40000).unwrap();
    m3.run_for(Cycles(20_000));
    let mut tick = 0u64;
    c.bench_function("f15_timeslice_preemption", |b| {
        b.iter(|| {
            tick += 1;
            m3.poke_u64(ts.tick_word, tick);
            m3.run_for(Cycles(3_000));
        });
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets =
        bench_t1_tdt_enforcement,
        bench_f1_wake_path,
        bench_f2_io_engine,
        bench_f4_syscalls,
        bench_f5_vmexit,
        bench_f6_microkernel_ipc,
        bench_f7_queue_sweep_point,
        bench_f8_state_store,
        bench_f9_scheduler_pick,
        bench_f10_hierarchy_access,
        bench_f11_fabric_rpc,
        bench_f12_monitor_filters,
        bench_extensions,
        bench_machine_throughput,
}
criterion_main!(benches);

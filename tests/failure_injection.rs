//! Failure injection: misconfigured TDTs, fault storms, filter
//! exhaustion, truncated exception chains — the machine must either
//! contain the failure (disable the offender, deliver a descriptor) or
//! halt deliberately, never wedge or corrupt unrelated threads.

use switchless::core::exception::ExceptionKind;
use switchless::core::machine::{Machine, MachineConfig, MonitorKind};
use switchless::core::perm::{Perms, TdtEntry};
use switchless::core::tid::{ThreadState, Vtid};
use switchless::dev::nic::{Nic, NicConfig};
use switchless::dev::ssd::{Ssd, SsdConfig, SsdOp};
use switchless::isa::asm::assemble;
use switchless::kern::ioengine::{checksum_seal, IoEngine, RetryPolicy};
use switchless::sim::fault::{FaultKind, FaultPlan};
use switchless::sim::time::Cycles;

fn small() -> Machine {
    Machine::new(MachineConfig::small())
}

/// Every counter on the machine, name-ordered — the "report" whose
/// byte-identity across same-seed runs the determinism tests assert.
fn counter_dump(m: &Machine) -> Vec<(String, u64)> {
    m.counters()
        .iter()
        .map(|(k, v)| (k.to_owned(), v))
        .collect()
}

/// A fault storm: 20 user threads all divide by zero; every one is
/// individually disabled with its own descriptor; the handler drains all
/// of them; nothing else is disturbed.
#[test]
fn fault_storm_contained() {
    let mut cfg = MachineConfig::small();
    cfg.ptids_per_core = 64;
    let mut m = Machine::new(cfg);
    // An innocent bystander thread.
    let bystander = assemble(".base 0x80000\nentry: jmp entry\n").unwrap();
    let bt = m.load_program(0, &bystander).unwrap();
    m.start_thread(bt);

    let n = 20;
    let mut edps = Vec::new();
    for i in 0..n {
        let edp = m.alloc(32);
        edps.push(edp);
        let prog = assemble(&format!(
            ".base {:#x}\nentry:\n movi r2, 0\n div r1, r1, r2\n halt\n",
            0x10000 + i * 0x1000
        ))
        .unwrap();
        let tid = m.load_program_user(0, &prog).unwrap();
        m.set_thread_edp(tid, edp);
        m.start_thread(tid);
    }
    m.run_for(Cycles(1_000_000));
    assert!(
        m.halted_reason().is_none(),
        "storm must not halt the machine"
    );
    assert_eq!(m.counters().get("exception.div_zero"), n);
    for &edp in &edps {
        assert_eq!(m.peek_u64(edp), ExceptionKind::DivZero.code());
    }
    assert_ne!(
        m.thread_state(bt),
        ThreadState::Disabled,
        "bystander unharmed"
    );
}

/// TDT pointing at a bogus ptid: start through it faults the caller
/// rather than corrupting anything.
#[test]
fn tdt_bogus_ptid_faults_caller() {
    let mut m = small();
    let prog = assemble(".base 0x10000\nentry: start 0\nmovi r9, 1\nhalt\n").unwrap();
    let tid = m.load_program_user(0, &prog).unwrap();
    let tdt = m.alloc(64);
    // ptid 60000 does not exist on this machine.
    m.write_tdt_entry(
        tdt,
        Vtid(0),
        TdtEntry::new(switchless::core::tid::Ptid(60_000), Perms::ALL),
    );
    m.set_thread_tdtr(tid, tdt);
    let edp = m.alloc(32);
    m.set_thread_edp(tid, edp);
    m.start_thread(tid);
    m.run_for(Cycles(100_000));
    assert_eq!(m.thread_state(tid), ThreadState::Disabled);
    assert_eq!(m.thread_reg(tid, 9), 0);
    assert_eq!(m.peek_u64(edp), ExceptionKind::PermissionDenied.code());
}

/// A TDT base pointing outside memory: lookup faults as BadMemory.
#[test]
fn tdt_base_outside_memory_faults() {
    let mut m = small();
    let prog = assemble(".base 0x10000\nentry: start 0\nhalt\n").unwrap();
    let tid = m.load_program_user(0, &prog).unwrap();
    m.set_thread_tdtr(tid, (4 << 20) - 4); // near the end of memory
    let edp = m.alloc(32);
    m.set_thread_edp(tid, edp);
    m.start_thread(tid);
    m.run_for(Cycles(100_000));
    assert_eq!(m.peek_u64(edp), ExceptionKind::BadMemory.code());
}

/// Monitor-filter exhaustion (CAM design): arming beyond capacity
/// delivers a descriptor so software can fall back, rather than silently
/// dropping the watch.
#[test]
fn cam_exhaustion_faults_gracefully() {
    let mut cfg = MachineConfig::small();
    cfg.monitor = MonitorKind::Cam { capacity: 2 };
    let mut m = Machine::new(cfg);
    let mut tids = Vec::new();
    for i in 0..3 {
        let mb = m.alloc(64);
        let prog = assemble(&format!(
            ".base {:#x}\nentry:\n monitor {mb}\n mwait\n halt\n",
            0x10000 + i * 0x1000,
        ))
        .unwrap();
        let tid = m.load_program_user(0, &prog).unwrap();
        let edp = m.alloc(32);
        m.set_thread_edp(tid, edp);
        m.start_thread(tid);
        tids.push((tid, edp));
    }
    m.run_for(Cycles(100_000));
    let disabled = tids
        .iter()
        .filter(|&&(t, _)| m.thread_state(t) == ThreadState::Disabled)
        .count();
    assert_eq!(disabled, 1, "exactly the third monitor fails");
    assert_eq!(m.counters().get("monitor.exhausted"), 1);
    assert!(m.halted_reason().is_none());
}

/// Stopping a thread that is parked in mwait disarms its watches: a
/// later store must not wake it.
#[test]
fn stop_disarms_watches() {
    let mut m = small();
    let mb = m.alloc(64);
    let prog = assemble(&format!(
        ".base 0x10000\nentry:\n monitor {mb}\n mwait\n movi r9, 1\n halt\n"
    ))
    .unwrap();
    let tid = m.load_program(0, &prog).unwrap();
    m.start_thread(tid);
    m.run_for(Cycles(5_000));
    assert_eq!(m.thread_state(tid), ThreadState::Waiting);
    m.stop_thread(tid);
    m.poke_u64(mb, 1);
    m.run_for(Cycles(100_000));
    assert_eq!(m.thread_state(tid), ThreadState::Disabled);
    assert_eq!(m.thread_reg(tid, 9), 0, "stopped thread must not run");
    // Restarting it resumes at the instruction after mwait.
    m.start_thread(tid);
    m.run_for(Cycles(100_000));
    assert_eq!(m.thread_state(tid), ThreadState::Halted);
    assert_eq!(m.thread_reg(tid, 9), 1);
}

/// Self-stop: a thread stopping itself takes effect and it can be
/// resumed by another thread.
#[test]
fn self_stop_and_resume() {
    let mut m = small();
    let victim = assemble(
        r#"
        .base 0x10000
        entry:
            stop 0          ; vtid 0 maps to self
            movi r9, 1      ; runs only after someone restarts us
            halt
        "#,
    )
    .unwrap();
    let v = m.load_program(0, &victim).unwrap();
    let tdt = m.alloc(64);
    m.write_tdt_entry(tdt, Vtid(0), TdtEntry::new(v.ptid, Perms::ALL));
    m.set_thread_tdtr(v, tdt);
    m.start_thread(v);
    m.run_for(Cycles(100_000));
    assert_eq!(m.thread_state(v), ThreadState::Disabled);
    assert_eq!(m.thread_reg(v, 9), 0);
    m.start_thread(v);
    m.run_for(Cycles(100_000));
    assert_eq!(m.thread_state(v), ThreadState::Halted);
    assert_eq!(m.thread_reg(v, 9), 1);
}

/// Exception descriptor area overlapping the faulting thread's own EDP
/// chain end: a second fault in the handler with EDP=0 halts exactly
/// once with a triple-fault-analog reason.
#[test]
fn double_fault_without_handler_halts_once() {
    let mut m = small();
    let edp = m.alloc(32);
    let a = assemble(".base 0x10000\nentry:\n movi r2, 0\n div r1, r1, r2\nhalt\n").unwrap();
    let b = assemble(&format!(
        ".base 0x20000\nentry:\n monitor {edp}\n mwait\n movi r2, 0\n div r1, r1, r2\n halt\n"
    ))
    .unwrap();
    let ta = m.load_program(0, &a).unwrap();
    let tb = m.load_program(0, &b).unwrap();
    m.set_thread_edp(ta, edp);
    // tb has NO edp: its fault is terminal.
    m.start_thread(tb);
    m.run_for(Cycles(5_000));
    m.start_thread(ta);
    m.run_for(Cycles(1_000_000));
    let reason = m.halted_reason().expect("must halt");
    assert!(reason.contains("triple-fault"), "{reason}");
    assert_eq!(m.counters().get("machine.halt"), 1);
}

/// Wire corruption end-to-end: a fault plan flips payload bytes, the
/// I/O engine's checksum validation catches every damaged packet, and
/// two same-seed runs are bit-identical.
#[test]
fn nic_corruption_detected_by_checksum() {
    let run = || {
        let mut m = small();
        m.install_fault_plan(FaultPlan::new(21).with_rate(FaultKind::NicCorrupt, 0.25));
        let nic = Nic::attach(&mut m, NicConfig::default());
        let eng = IoEngine::install(&mut m, 0, &nic, 4, 0x40000).unwrap();
        eng.set_fault_handling(RetryPolicy::default(), true);
        m.run_for(Cycles(20_000));
        let mut payload = [0x42u8; 32];
        checksum_seal(&mut payload);
        let t0 = m.now();
        for seq in 0..20u64 {
            let at = t0 + Cycles(seq * 2_000);
            eng.note_packet(seq, at + Cycles(300), Cycles(1_500));
            nic.schedule_rx(&mut m, at, seq, &payload);
        }
        m.run_for(Cycles(500_000));
        (eng.completed(), counter_dump(&m))
    };
    let (completed, counters) = run();
    let corrupt = counters
        .iter()
        .find(|(k, _)| k == "engine.rx.corrupt")
        .map_or(0, |&(_, v)| v);
    assert!(corrupt >= 1, "the storm actually corrupted something");
    assert_eq!(
        corrupt,
        counters
            .iter()
            .find(|(k, _)| k == "fault.nic.corrupt")
            .unwrap()
            .1,
        "every injected corruption was caught, no false positives"
    );
    assert_eq!(
        completed + corrupt,
        20,
        "nothing lost, nothing double-counted"
    );
    assert_eq!((completed, counters), run(), "same seed, same bytes");
}

/// A torn SSD completion observed from assembly: the tail bump wakes the
/// driver thread, its sequence-word validation sees the stale word, and
/// the re-read (an mwait on the word itself) sees it heal.
#[test]
fn ssd_torn_completion_reread() {
    let run = || {
        let mut m = small();
        m.install_fault_plan(
            FaultPlan::new(22)
                .with_rate(FaultKind::SsdTornCompletion, 1.0)
                .with_delay(FaultKind::SsdTornCompletion, Cycles(5_000), Cycles(5_000)),
        );
        let ssd = Ssd::attach(&mut m, SsdConfig::default());
        let prog = assemble(&format!(
            r#"
            .base 0x10000
            ; r5 counts validation passes: 2 means the first read saw the
            ; torn (stale) word and the re-read saw it healed.
            entry:
                movi r1, 6          ; expected CQ tail after seq 5
            wait:
                monitor {tail}
                ld r2, {tail}
                beq r2, r1, check
                mwait
                jmp wait
            check:
                movi r3, 5          ; expected sequence word
            reread:
                addi r5, r5, 1
                monitor {seqw}
                ld r4, {seqw}
                beq r4, r3, done
                mwait
                jmp reread
            done:
                halt
            "#,
            tail = ssd.cq_tail,
            seqw = ssd.cq_addr(5) + 8,
        ))
        .unwrap();
        let tid = m.load_program(0, &prog).unwrap();
        m.start_thread(tid);
        m.run_for(Cycles(2_000));
        let now = m.now();
        ssd.submit(&mut m, now, 5, SsdOp::Write, 0xfeed);
        m.run_for(Cycles(200_000));
        assert_eq!(m.thread_state(tid), ThreadState::Halted);
        (m.thread_reg(tid, 5), counter_dump(&m))
    };
    let (rereads, counters) = run();
    assert_eq!(rereads, 2, "exactly one stale read then one healed read");
    assert!(counters
        .iter()
        .any(|(k, v)| k == "fault.ssd.torn_completion" && *v == 1));
    assert_eq!((rereads, counters), run(), "same seed, same bytes");
}

/// Exception-descriptor backpressure at the integration level: a flooded
/// shared slot drops the second descriptor with a counter, both
/// offenders disable cleanly, and the machine never halts.
#[test]
fn descriptor_ring_overflow_sets_counter_and_disables() {
    let run = || {
        let mut m = small();
        let edp = m.alloc(32);
        let mut tids = Vec::new();
        for i in 0..4u64 {
            let prog = assemble(&format!(
                ".base {:#x}\nentry:\n movi r2, 0\n div r1, r1, r2\n halt\n",
                0x10000 + i * 0x1000
            ))
            .unwrap();
            let tid = m.load_program_user(0, &prog).unwrap();
            m.set_thread_edp(tid, edp);
            m.start_thread(tid);
            tids.push(tid);
        }
        m.run_for(Cycles(100_000));
        assert!(m.halted_reason().is_none(), "overflow is not a halt");
        for &t in &tids {
            assert_eq!(m.thread_state(t), ThreadState::Disabled, "clean disable");
        }
        (m.peek_u64(edp), m.peek_u64(edp + 8), counter_dump(&m))
    };
    let (kind, ptid, counters) = run();
    assert_eq!(
        kind,
        ExceptionKind::DivZero.code(),
        "first descriptor intact"
    );
    let overflow = counters
        .iter()
        .find(|(k, _)| k == "exception.descriptor_overflow")
        .unwrap()
        .1;
    assert_eq!(overflow, 3, "all but the first descriptor dropped");
    assert_eq!((kind, ptid, counters), run(), "same seed, same bytes");
}

/// The per-thread watchdog at the integration level: a wedged mwait
/// becomes a WatchdogExpired descriptor, deterministically.
#[test]
fn watchdog_expires_wedged_mwait() {
    let run = || {
        let mut m = small();
        let mb = m.alloc(64);
        let prog = assemble(&format!(
            ".base 0x10000\nentry:\n monitor {mb}\n mwait\n halt\n"
        ))
        .unwrap();
        let tid = m.load_program(0, &prog).unwrap();
        let edp = m.alloc(32);
        m.set_thread_edp(tid, edp);
        m.set_thread_watchdog(tid, Some(Cycles(25_000)));
        m.start_thread(tid);
        m.run_for(Cycles(200_000));
        assert_eq!(m.thread_state(tid), ThreadState::Disabled);
        (m.peek_u64(edp), counter_dump(&m))
    };
    let (kind, counters) = run();
    assert_eq!(kind, ExceptionKind::WatchdogExpired.code());
    assert!(counters
        .iter()
        .any(|(k, v)| k == "watchdog.fired" && *v == 1));
    assert_eq!((kind, counters), run(), "same seed, same bytes");
}

/// After a machine halt, the world is frozen: no further instructions
/// execute even across long run_for windows.
#[test]
fn halted_machine_is_frozen() {
    let mut m = small();
    let bad = assemble(".base 0x10000\nentry:\n movi r2, 0\n div r1, r1, r2\nhalt\n").unwrap();
    let spin = assemble(".base 0x20000\nentry: jmp entry\n").unwrap();
    let tb = m.load_program(0, &bad).unwrap();
    let ts = m.load_program(0, &spin).unwrap();
    m.start_thread(ts);
    m.start_thread(tb);
    m.run_for(Cycles(100_000));
    assert!(m.halted_reason().is_some());
    let insts = m.counters().get("inst.executed");
    m.run_for(Cycles(1_000_000));
    assert_eq!(
        m.counters().get("inst.executed"),
        insts,
        "frozen after halt"
    );
    let _ = ts;
}

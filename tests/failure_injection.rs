//! Failure injection: misconfigured TDTs, fault storms, filter
//! exhaustion, truncated exception chains — the machine must either
//! contain the failure (disable the offender, deliver a descriptor) or
//! halt deliberately, never wedge or corrupt unrelated threads.

use switchless::core::exception::ExceptionKind;
use switchless::core::machine::{Machine, MachineConfig, MonitorKind};
use switchless::core::perm::{Perms, TdtEntry};
use switchless::core::tid::{ThreadState, Vtid};
use switchless::isa::asm::assemble;
use switchless::sim::time::Cycles;

fn small() -> Machine {
    Machine::new(MachineConfig::small())
}

/// A fault storm: 20 user threads all divide by zero; every one is
/// individually disabled with its own descriptor; the handler drains all
/// of them; nothing else is disturbed.
#[test]
fn fault_storm_contained() {
    let mut cfg = MachineConfig::small();
    cfg.ptids_per_core = 64;
    let mut m = Machine::new(cfg);
    // An innocent bystander thread.
    let bystander = assemble(".base 0x80000\nentry: jmp entry\n").unwrap();
    let bt = m.load_program(0, &bystander).unwrap();
    m.start_thread(bt);

    let n = 20;
    let mut edps = Vec::new();
    for i in 0..n {
        let edp = m.alloc(32);
        edps.push(edp);
        let prog = assemble(&format!(
            ".base {:#x}\nentry:\n movi r2, 0\n div r1, r1, r2\n halt\n",
            0x10000 + i * 0x1000
        ))
        .unwrap();
        let tid = m.load_program_user(0, &prog).unwrap();
        m.set_thread_edp(tid, edp);
        m.start_thread(tid);
    }
    m.run_for(Cycles(1_000_000));
    assert!(m.halted_reason().is_none(), "storm must not halt the machine");
    assert_eq!(m.counters().get("exception.div_zero"), n);
    for &edp in &edps {
        assert_eq!(m.peek_u64(edp), ExceptionKind::DivZero.code());
    }
    assert_ne!(m.thread_state(bt), ThreadState::Disabled, "bystander unharmed");
}

/// TDT pointing at a bogus ptid: start through it faults the caller
/// rather than corrupting anything.
#[test]
fn tdt_bogus_ptid_faults_caller() {
    let mut m = small();
    let prog = assemble(".base 0x10000\nentry: start 0\nmovi r9, 1\nhalt\n").unwrap();
    let tid = m.load_program_user(0, &prog).unwrap();
    let tdt = m.alloc(64);
    // ptid 60000 does not exist on this machine.
    m.write_tdt_entry(
        tdt,
        Vtid(0),
        TdtEntry::new(switchless::core::tid::Ptid(60_000), Perms::ALL),
    );
    m.set_thread_tdtr(tid, tdt);
    let edp = m.alloc(32);
    m.set_thread_edp(tid, edp);
    m.start_thread(tid);
    m.run_for(Cycles(100_000));
    assert_eq!(m.thread_state(tid), ThreadState::Disabled);
    assert_eq!(m.thread_reg(tid, 9), 0);
    assert_eq!(m.peek_u64(edp), ExceptionKind::PermissionDenied.code());
}

/// A TDT base pointing outside memory: lookup faults as BadMemory.
#[test]
fn tdt_base_outside_memory_faults() {
    let mut m = small();
    let prog = assemble(".base 0x10000\nentry: start 0\nhalt\n").unwrap();
    let tid = m.load_program_user(0, &prog).unwrap();
    m.set_thread_tdtr(tid, (4 << 20) - 4); // near the end of memory
    let edp = m.alloc(32);
    m.set_thread_edp(tid, edp);
    m.start_thread(tid);
    m.run_for(Cycles(100_000));
    assert_eq!(m.peek_u64(edp), ExceptionKind::BadMemory.code());
}

/// Monitor-filter exhaustion (CAM design): arming beyond capacity
/// delivers a descriptor so software can fall back, rather than silently
/// dropping the watch.
#[test]
fn cam_exhaustion_faults_gracefully() {
    let mut cfg = MachineConfig::small();
    cfg.monitor = MonitorKind::Cam { capacity: 2 };
    let mut m = Machine::new(cfg);
    let mut tids = Vec::new();
    for i in 0..3 {
        let mb = m.alloc(64);
        let prog = assemble(&format!(
            ".base {:#x}\nentry:\n monitor {mb}\n mwait\n halt\n",
            0x10000 + i * 0x1000,
        ))
        .unwrap();
        let tid = m.load_program_user(0, &prog).unwrap();
        let edp = m.alloc(32);
        m.set_thread_edp(tid, edp);
        m.start_thread(tid);
        tids.push((tid, edp));
    }
    m.run_for(Cycles(100_000));
    let disabled = tids
        .iter()
        .filter(|&&(t, _)| m.thread_state(t) == ThreadState::Disabled)
        .count();
    assert_eq!(disabled, 1, "exactly the third monitor fails");
    assert_eq!(m.counters().get("monitor.exhausted"), 1);
    assert!(m.halted_reason().is_none());
}

/// Stopping a thread that is parked in mwait disarms its watches: a
/// later store must not wake it.
#[test]
fn stop_disarms_watches() {
    let mut m = small();
    let mb = m.alloc(64);
    let prog = assemble(&format!(
        ".base 0x10000\nentry:\n monitor {mb}\n mwait\n movi r9, 1\n halt\n"
    ))
    .unwrap();
    let tid = m.load_program(0, &prog).unwrap();
    m.start_thread(tid);
    m.run_for(Cycles(5_000));
    assert_eq!(m.thread_state(tid), ThreadState::Waiting);
    m.stop_thread(tid);
    m.poke_u64(mb, 1);
    m.run_for(Cycles(100_000));
    assert_eq!(m.thread_state(tid), ThreadState::Disabled);
    assert_eq!(m.thread_reg(tid, 9), 0, "stopped thread must not run");
    // Restarting it resumes at the instruction after mwait.
    m.start_thread(tid);
    m.run_for(Cycles(100_000));
    assert_eq!(m.thread_state(tid), ThreadState::Halted);
    assert_eq!(m.thread_reg(tid, 9), 1);
}

/// Self-stop: a thread stopping itself takes effect and it can be
/// resumed by another thread.
#[test]
fn self_stop_and_resume() {
    let mut m = small();
    let victim = assemble(
        r#"
        .base 0x10000
        entry:
            stop 0          ; vtid 0 maps to self
            movi r9, 1      ; runs only after someone restarts us
            halt
        "#,
    )
    .unwrap();
    let v = m.load_program(0, &victim).unwrap();
    let tdt = m.alloc(64);
    m.write_tdt_entry(tdt, Vtid(0), TdtEntry::new(v.ptid, Perms::ALL));
    m.set_thread_tdtr(v, tdt);
    m.start_thread(v);
    m.run_for(Cycles(100_000));
    assert_eq!(m.thread_state(v), ThreadState::Disabled);
    assert_eq!(m.thread_reg(v, 9), 0);
    m.start_thread(v);
    m.run_for(Cycles(100_000));
    assert_eq!(m.thread_state(v), ThreadState::Halted);
    assert_eq!(m.thread_reg(v, 9), 1);
}

/// Exception descriptor area overlapping the faulting thread's own EDP
/// chain end: a second fault in the handler with EDP=0 halts exactly
/// once with a triple-fault-analog reason.
#[test]
fn double_fault_without_handler_halts_once() {
    let mut m = small();
    let edp = m.alloc(32);
    let a = assemble(".base 0x10000\nentry:\n movi r2, 0\n div r1, r1, r2\nhalt\n").unwrap();
    let b = assemble(&format!(
        ".base 0x20000\nentry:\n monitor {edp}\n mwait\n movi r2, 0\n div r1, r1, r2\n halt\n"
    ))
    .unwrap();
    let ta = m.load_program(0, &a).unwrap();
    let tb = m.load_program(0, &b).unwrap();
    m.set_thread_edp(ta, edp);
    // tb has NO edp: its fault is terminal.
    m.start_thread(tb);
    m.run_for(Cycles(5_000));
    m.start_thread(ta);
    m.run_for(Cycles(1_000_000));
    let reason = m.halted_reason().expect("must halt");
    assert!(reason.contains("triple-fault"), "{reason}");
    assert_eq!(m.counters().get("machine.halt"), 1);
}

/// After a machine halt, the world is frozen: no further instructions
/// execute even across long run_for windows.
#[test]
fn halted_machine_is_frozen() {
    let mut m = small();
    let bad = assemble(".base 0x10000\nentry:\n movi r2, 0\n div r1, r1, r2\nhalt\n").unwrap();
    let spin = assemble(".base 0x20000\nentry: jmp entry\n").unwrap();
    let tb = m.load_program(0, &bad).unwrap();
    let ts = m.load_program(0, &spin).unwrap();
    m.start_thread(ts);
    m.start_thread(tb);
    m.run_for(Cycles(100_000));
    assert!(m.halted_reason().is_some());
    let insts = m.counters().get("inst.executed");
    m.run_for(Cycles(1_000_000));
    assert_eq!(m.counters().get("inst.executed"), insts, "frozen after halt");
    let _ = ts;
}

//! Property-based tests on the core data structures and invariants.
//!
//! Gated behind the off-by-default `proptest` feature so the tier-1
//! build needs no network; see the feature note in Cargo.toml.
#![cfg(feature = "proptest")]

use proptest::prelude::*;

use switchless::core::perm::{Perms, TdtEntry};
use switchless::core::store::{StateStore, StoreConfig, Tier};
use switchless::core::tid::Ptid;
use switchless::isa::asm::assemble;
use switchless::isa::disasm::disassemble;
use switchless::isa::inst::Inst;
use switchless::mem::monitor::{CamFilter, HashFilter, MonitorFilter, WatchId};
use switchless::mem::PAddr;
use switchless::sim::stats::Histogram;
use switchless::sim::time::Cycles;
use switchless::wl::queue::{Discipline, QueueConfig, QueueSim};

proptest! {
    /// Every decodable instruction word re-encodes to itself.
    #[test]
    fn inst_decode_encode_roundtrip(word in any::<u64>()) {
        if let Ok(inst) = Inst::decode(word) {
            let re = inst.encode();
            let back = Inst::decode(re).expect("re-encoded word decodes");
            prop_assert_eq!(inst, back);
        }
    }

    /// Disassembling any decodable instruction produces text the
    /// assembler accepts and that round-trips to the same instruction.
    #[test]
    fn disasm_reassembles(word in any::<u64>()) {
        if let Ok(inst) = Inst::decode(word) {
            let text = disassemble(inst);
            let src = format!("entry: {text}\n");
            let p = assemble(&src)
                .unwrap_or_else(|e| panic!("'{text}' failed to assemble: {e}"));
            let back = Inst::decode(p.words[0]).expect("assembled word decodes");
            prop_assert_eq!(inst, back);
        }
    }

    /// TDT entries survive the memory encoding.
    #[test]
    fn tdt_entry_roundtrip(ptid in any::<u32>(), perms in 0u8..16, valid in any::<bool>()) {
        let e = TdtEntry { ptid: Ptid(ptid), perms: Perms(perms), valid };
        prop_assert_eq!(TdtEntry::decode(e.encode()), e);
    }

    /// Histogram quantiles are within 3% of an exact sorted reference.
    #[test]
    fn histogram_quantiles_match_reference(
        mut values in prop::collection::vec(1u64..1_000_000, 50..400),
        q in 0.01f64..0.999,
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let exact = values[rank - 1];
        let got = h.quantile(q);
        let err = (got as f64 - exact as f64).abs() / exact as f64;
        prop_assert!(err < 0.03, "q={q} got={got} exact={exact}");
    }

    /// The CAM monitor filter never misses an armed write (no lost
    /// wakeups), and never wakes a watcher whose range is disjoint.
    #[test]
    fn cam_filter_exact_semantics(
        watches in prop::collection::vec((0u64..10_000, 1u64..64), 1..50),
        store_addr in 0u64..10_064,
        store_len in 1u64..64,
    ) {
        let mut f = CamFilter::new(256);
        for (i, &(a, l)) in watches.iter().enumerate() {
            f.arm(WatchId(i as u64), PAddr(a), l).expect("capacity is sufficient");
        }
        let mut out = Vec::new();
        f.on_store(PAddr(store_addr), store_len, &mut out);
        for (i, &(a, l)) in watches.iter().enumerate() {
            let overlap = store_addr < a + l && a < store_addr + store_len;
            let woken = out.iter().any(|w| w.watcher == WatchId(i as u64));
            prop_assert_eq!(overlap, woken, "watch {} at ({},{})", i, a, l);
        }
    }

    /// The hashed filter is *conservative*: it may false-wake, but every
    /// genuinely overlapping watch is woken (no lost wakeups).
    #[test]
    fn hash_filter_never_loses_wakeups(
        watches in prop::collection::vec((0u64..10_000, 1u64..64), 1..50),
        store_addr in 0u64..10_064,
        store_len in 1u64..64,
    ) {
        let mut f = HashFilter::new();
        for (i, &(a, l)) in watches.iter().enumerate() {
            f.arm(WatchId(i as u64), PAddr(a), l).expect("unbounded");
        }
        let mut out = Vec::new();
        f.on_store(PAddr(store_addr), store_len, &mut out);
        for (i, &(a, l)) in watches.iter().enumerate() {
            let overlap = store_addr < a + l && a < store_addr + store_len;
            if overlap {
                prop_assert!(
                    out.iter().any(|w| w.watcher == WatchId(i as u64)),
                    "lost wakeup for watch {} at ({},{})", i, a, l
                );
            }
        }
    }

    /// State-store tier accounting is conserved: every registered thread
    /// is in exactly one tier and occupancies sum correctly.
    #[test]
    fn state_store_conservation(ops in prop::collection::vec((0u32..40, 0u8..8), 1..200)) {
        let mut s = StateStore::new(StoreConfig {
            rf_threads: 4,
            l2_threads: 8,
            l3_threads: 16,
            ..StoreConfig::default()
        });
        let mut registered = std::collections::HashSet::new();
        for &(t, prio) in &ops {
            s.activate(Ptid(t), prio, 160);
            registered.insert(t);
        }
        let total = s.occupancy(Tier::Rf)
            + s.occupancy(Tier::L2)
            + s.occupancy(Tier::L3)
            + s.occupancy(Tier::Dram);
        prop_assert_eq!(total, registered.len());
        prop_assert!(s.occupancy(Tier::Rf) <= 4);
        prop_assert!(s.occupancy(Tier::L2) <= 8);
        prop_assert!(s.occupancy(Tier::L3) <= 16);
    }

    /// Queueing simulator conserves work: with no overheads, busy cycles
    /// equal total service, and every job completes.
    #[test]
    fn queue_sim_conserves_work(
        jobs in prop::collection::vec((0u64..100_000, 1u64..5_000), 1..200),
        servers in 1usize..5,
        fcfs in any::<bool>(),
    ) {
        let cfg = QueueConfig {
            servers,
            discipline: if fcfs {
                Discipline::Fcfs
            } else {
                Discipline::Rr { quantum: Cycles(500) }
            },
            wakeup_overhead: Cycles::ZERO,
            dispatch_overhead: Cycles::ZERO,
        };
        let jobs: Vec<(Cycles, Cycles)> =
            jobs.iter().map(|&(a, s)| (Cycles(a), Cycles(s))).collect();
        let r = QueueSim::run(&cfg, &jobs, Cycles::ZERO);
        prop_assert_eq!(r.completed, jobs.len() as u64);
        let total: u64 = jobs.iter().map(|&(_, s)| s.0).sum();
        prop_assert_eq!(r.busy_cycles, total);
        // Sojourn of any job is at least its service time.
        let min_service = jobs.iter().map(|&(_, s)| s.0).min().unwrap_or(0);
        prop_assert!(r.sojourn.min() >= min_service.min(r.sojourn.min()));
    }

    /// Assembler: labels always resolve to 8-byte-aligned addresses
    /// inside the image, and the entry point is within the image.
    #[test]
    fn assembler_label_invariants(n_words in 1usize..30, pick in any::<u16>()) {
        let mut src = String::new();
        for i in 0..n_words {
            src.push_str(&format!("l{i}: .word {i}\n"));
        }
        src.push_str("entry: halt\n");
        let p = assemble(&src).expect("assembles");
        let target = usize::from(pick) % n_words;
        let addr = p.symbol(&format!("l{target}")).expect("symbol exists");
        prop_assert_eq!(addr % 8, 0);
        prop_assert!(addr >= p.base && addr < p.end());
        prop_assert!(p.entry >= p.base && p.entry < p.end());
    }
}

//! Machine soundness under arbitrary programs.
//!
//! Gated behind the off-by-default `proptest` feature so the tier-1
//! build needs no network; see the feature note in Cargo.toml.
#![cfg(feature = "proptest")]
//!
//! Property: feeding the machine *any* sequence of decodable instruction
//! words — including privileged ops from user mode, stores to arbitrary
//! addresses, `start`/`stop` through garbage TDTs, huge `work` bursts
//! and self-jumps — must never panic the simulator, corrupt accounting,
//! or break determinism. Faults must land as descriptors (or deliberate
//! machine halts), exactly like real hardware containing bad software.

use proptest::prelude::*;

use switchless::core::machine::{Machine, MachineConfig};
use switchless::isa::inst::Inst;
use switchless::sim::time::Cycles;

/// Builds a program image from arbitrary words, keeping only ones that
/// decode, and capping `work` bursts so runs stay fast.
fn sanitize(words: &[u64]) -> Vec<u64> {
    let mut out: Vec<u64> = words
        .iter()
        .filter_map(|&w| {
            Inst::decode(w).ok().map(|i| match i {
                Inst::Work { cycles } => Inst::Work {
                    cycles: cycles % 10_000,
                }
                .encode(),
                _ => w,
            })
        })
        .collect();
    if out.is_empty() {
        out.push(Inst::Nop.encode());
    }
    out.push(Inst::Halt.encode());
    out
}

fn run_machine(words: &[u64], user_mode: bool) -> (u64, u64, Option<String>) {
    let mut m = Machine::new(MachineConfig::small());
    let edp = m.alloc(32);
    let prog_words = sanitize(words);
    // Hand-build a program image at 0x10000.
    let prog = switchless::isa::asm::Program::from_words(0x10000, prog_words);
    let tid = if user_mode {
        m.load_program_user(0, &prog)
    } else {
        m.load_program(0, &prog)
    }
    .expect("image fits");
    m.set_thread_edp(tid, edp);
    m.start_thread(tid);
    m.run_for(Cycles(200_000));
    (
        m.counters().get("inst.executed"),
        m.billed_cycles(tid).0,
        m.halted_reason().map(str::to_owned),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The machine never panics on arbitrary user-mode programs, and two
    /// identical runs are identical.
    #[test]
    fn arbitrary_user_programs_are_contained(
        words in prop::collection::vec(any::<u64>(), 1..60),
    ) {
        let a = run_machine(&words, true);
        let b = run_machine(&words, true);
        prop_assert_eq!(&a, &b, "determinism violated");
        // Accounting sanity: billed cycles only if instructions ran.
        if a.1 > 0 {
            prop_assert!(a.0 > 0);
        }
    }

    /// Supervisor-mode garbage is also contained (it can halt the
    /// machine via an unhandled fault in a child — that is deliberate —
    /// but must never panic the simulator).
    #[test]
    fn arbitrary_supervisor_programs_are_contained(
        words in prop::collection::vec(any::<u64>(), 1..60),
    ) {
        let _ = run_machine(&words, false);
    }

    /// A garbage program can never disturb a healthy sibling thread: the
    /// sibling's result is bit-identical with and without the intruder,
    /// unless the intruder legitimately halts the machine first.
    #[test]
    fn garbage_cannot_corrupt_sibling_results(
        words in prop::collection::vec(any::<u64>(), 1..40),
    ) {
        let run = |with_garbage: bool| -> (bool, u64, bool) {
            let mut m = Machine::new(MachineConfig::small());
            let healthy = switchless::isa::asm::assemble(
                r#"
                .base 0x40000
                entry:
                    movi r1, 100
                    movi r2, 0
                loop:
                    add r2, r2, r1
                    addi r1, r1, -1
                    bne r1, r0, loop
                    halt
                "#,
            )
            .unwrap();
            let ht = m.load_program(0, &healthy).unwrap();
            if with_garbage {
                let edp = m.alloc(32);
                let prog =
                    switchless::isa::asm::Program::from_words(0x10000, sanitize(&words));
                let g = m.load_program_user(0, &prog).unwrap();
                m.set_thread_edp(g, edp);
                m.start_thread(g);
            }
            m.start_thread(ht);
            m.run_for(Cycles(500_000));
            let done = m.thread_state(ht) == switchless::core::tid::ThreadState::Halted;
            (done, m.thread_reg(ht, 2), m.halted_reason().is_some())
        };
        let clean = run(false);
        let dirty = run(true);
        prop_assert!(clean.0, "healthy thread finishes alone");
        prop_assert_eq!(clean.1, 5050);
        if !dirty.2 {
            // Machine survived the garbage: the sibling's answer must be
            // untouched (the garbage is user-mode and cannot write the
            // sibling's registers; it CAN write shared memory, but the
            // healthy program keeps everything in registers).
            prop_assert!(dirty.0, "sibling starved by garbage thread");
            prop_assert_eq!(dirty.1, 5050, "sibling result corrupted");
        }
    }
}

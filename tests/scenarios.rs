//! Cross-crate end-to-end scenarios: whole §2 systems running together
//! on one machine.

use switchless::core::machine::{Machine, MachineConfig};
use switchless::core::tid::ThreadState;
use switchless::dev::nic::{Nic, NicConfig};
use switchless::dev::ssd::{Ssd, SsdConfig, SsdOp};
use switchless::dev::timer::ApicTimer;
use switchless::isa::asm::assemble;
use switchless::kern::hypervisor::{self, exits, HvConfig};
use switchless::kern::ioengine::IoEngine;
use switchless::kern::microkernel::Microkernel;
use switchless::kern::nointr::EventHandlerSet;
use switchless::sim::rng::Rng;
use switchless::sim::time::Cycles;
use switchless::wl::arrivals::poisson_arrivals;

/// The whole §2 stack coexists on one machine: interrupt-less handlers,
/// the NIC I/O engine, a microkernel FS, and a guest behind an
/// unprivileged hypervisor, all making progress concurrently.
#[test]
fn full_stack_coexists_on_one_machine() {
    let mut cfg = MachineConfig::small();
    cfg.ptids_per_core = 200;
    cfg.mem_bytes = 16 << 20;
    let mut m = Machine::new(cfg);

    // 1. Interrupt-less timer handler.
    let handlers = EventHandlerSet::install(&mut m, 0, &[("tick", 500, 7)], 0x200000).unwrap();
    ApicTimer::start_periodic(
        &mut m,
        handlers.handlers[0].event_word,
        Cycles(50_000),
        Cycles(200_000),
        10,
    );

    // 2. NIC + thread-per-request I/O engine.
    let nic = Nic::attach(&mut m, NicConfig::default());
    let engine = IoEngine::install(&mut m, 0, &nic, 8, 0x240000).unwrap();

    // 3. Microkernel FS service + client.
    let mk = Microkernel::install(&mut m, 0, &[("fs", 1000, false)], 0x280000).unwrap();
    let client = assemble(&mk.client_program(0, 25, 0x2c0000)).unwrap();
    let app = m.load_program_user(0, &client).unwrap();

    // 4. Guest + unprivileged hypervisor (they use 0x40000-0x50000).
    let hv = hypervisor::install(
        &mut m,
        0,
        HvConfig {
            guest_work: 3_000,
            hv_work: 400,
            kernel_work: 700,
            iters: 15,
            exit_num: exits::IO,
        },
    )
    .unwrap();

    m.run_for(Cycles(30_000));
    m.start_thread(app);

    // Traffic for the I/O engine.
    let mut rng = Rng::seed_from(1);
    let arrivals = poisson_arrivals(&mut rng, m.now() + Cycles(1000), 20_000.0, 50);
    for (seq, &at) in arrivals.iter().enumerate() {
        engine.note_packet(seq as u64, at + Cycles(300), Cycles(2_000));
        nic.schedule_rx(&mut m, at, seq as u64, &[7; 64]);
    }

    m.run_for(Cycles(5_000_000));

    assert_eq!(handlers.handled(&m, 0), 10, "timer handler ran");
    assert_eq!(engine.completed(), 50, "I/O engine served everything");
    assert_eq!(m.thread_state(app), ThreadState::Halted, "FS client done");
    assert_eq!(mk.ops(&m, 0), 25, "FS service served everything");
    assert_eq!(m.thread_state(hv.guest), ThreadState::Halted, "guest done");
    assert_eq!(m.peek_u64(hv.exits_word), 15, "hypervisor handled exits");
    assert!(m.halted_reason().is_none(), "no triple faults anywhere");
}

/// Storage path: an I/O thread blocks on the SSD completion queue; reads
/// complete with data and wake it — no polling, no interrupts.
#[test]
fn ssd_read_path_end_to_end() {
    let mut m = Machine::new(MachineConfig::small());
    let ssd = Ssd::attach(&mut m, SsdConfig::default());
    let buf = m.alloc(4096);
    let prog = assemble(&format!(
        r#"
        entry:
            movi r1, 0
        loop:
            monitor {tail}
            ld r2, {tail}
            bne r2, r1, got
            mwait
            jmp loop
        got:
            mov r1, r2
            movi r3, 4        ; expect 4 completions
            bne r1, r3, loop
            ld r4, {buf}      ; read some of the DMA'd data
            halt
        "#,
        tail = ssd.cq_tail,
        buf = buf,
    ))
    .unwrap();
    let tid = m.load_program(0, &prog).unwrap();
    m.start_thread(tid);
    m.run_for(Cycles(5_000));
    let now = m.now();
    for seq in 0..4 {
        ssd.submit(
            &mut m,
            now,
            seq,
            SsdOp::Read {
                buf_addr: buf,
                len: 512,
            },
            seq,
        );
    }
    m.run_for(Cycles(500_000));
    assert_eq!(m.thread_state(tid), ThreadState::Halted);
    assert_eq!(ssd.tail(&m), 4);
    assert_eq!(m.counters().get("ssd.completions"), 4);
}

/// Determinism across the whole stack: two identical runs produce
/// identical counters, billing, and final memory words.
#[test]
fn full_stack_is_deterministic() {
    let run = || {
        let mut cfg = MachineConfig::small();
        cfg.ptids_per_core = 128;
        let mut m = Machine::new(cfg);
        let nic = Nic::attach(&mut m, NicConfig::default());
        let engine = IoEngine::install(&mut m, 0, &nic, 8, 0x40000).unwrap();
        let mut rng = Rng::seed_from(77);
        let arrivals = poisson_arrivals(&mut rng, Cycles(50_000), 5_000.0, 200);
        for (seq, &at) in arrivals.iter().enumerate() {
            engine.note_packet(seq as u64, at + Cycles(300), Cycles(1_500));
            nic.schedule_rx(&mut m, at, seq as u64, &[1; 32]);
        }
        m.run_for(Cycles(3_000_000));
        let lat = engine.latency();
        (
            engine.completed(),
            lat.p50(),
            lat.p99(),
            m.counters().get("inst.executed"),
            m.counters().get("monitor.wakes"),
            m.now().0,
        )
    };
    assert_eq!(run(), run());
}

/// Multi-core: threads on different cores communicate through shared
/// memory; a store on core 0 wakes a waiter on core 1.
#[test]
fn cross_core_wakeup() {
    let mut cfg = MachineConfig::small();
    cfg.cores = 2;
    let mut m = Machine::new(cfg);
    let flag = m.alloc(64);
    let waiter = assemble(&format!(
        ".base 0x10000\nentry:\n monitor {flag}\n ld r2, {flag}\n bne r2, r0, done\n mwait\ndone:\n ld r1, {flag}\n halt\n",
    ))
    .unwrap();
    let writer = assemble(&format!(
        ".base 0x20000\nentry:\n work 5000\n movi r1, 9\n st r1, {flag}\n halt\n",
    ))
    .unwrap();
    let w1 = m.load_program(1, &waiter).unwrap();
    let w0 = m.load_program(0, &writer).unwrap();
    m.start_thread(w1);
    m.run_for(Cycles(2_000));
    assert_eq!(m.thread_state(w1), ThreadState::Waiting);
    m.start_thread(w0);
    m.run_for(Cycles(100_000));
    assert_eq!(m.thread_state(w1), ThreadState::Halted);
    assert_eq!(m.thread_reg(w1, 1), 9);
}

/// Billing: §4's per-thread cycle accounting matches the work performed
/// within a reasonable envelope.
#[test]
fn billing_tracks_work() {
    let mut m = Machine::new(MachineConfig::small());
    let light = assemble(".base 0x10000\nentry: work 1000\nhalt\n").unwrap();
    let heavy = assemble(".base 0x20000\nentry: work 50000\nhalt\n").unwrap();
    let tl = m.load_program(0, &light).unwrap();
    let th = m.load_program(0, &heavy).unwrap();
    m.start_thread(tl);
    m.start_thread(th);
    m.run_for(Cycles(200_000));
    let bl = m.billed_cycles(tl).0;
    let bh = m.billed_cycles(th).0;
    assert!((1000..3000).contains(&bl), "light billed {bl}");
    assert!((50_000..53_000).contains(&bh), "heavy billed {bh}");
}

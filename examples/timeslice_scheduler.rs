//! Preemptive time slicing with **no interrupts and no context-switch
//! machinery**: §4's redefined OS scheduler as an eight-instruction
//! hardware-thread loop.
//!
//! The APIC timer increments a counter word. A scheduler hardware thread
//! `mwait`s on it; each tick it `stop`s the current batch thread and
//! `start`s the next through its TDT (which grants it exactly
//! start+stop, nothing more). The batch threads never cooperate — they
//! are preempted mid-compute, yet nothing ever saves registers to memory
//! or enters an IRQ context.
//!
//! ```sh
//! cargo run --example timeslice_scheduler
//! ```

use switchless::core::machine::{Machine, MachineConfig};
use switchless::dev::timer::ApicTimer;
use switchless::kern::timeslice;
use switchless::sim::time::Cycles;

fn main() {
    let mut m = Machine::new(MachineConfig::small());
    let ts = timeslice::install(&mut m, 0, 4, 0x40000).expect("installs");
    m.run_for(Cycles(10_000));

    // 1 ms of simulated time, 25 µs slices.
    ApicTimer::start_periodic(&mut m, ts.tick_word, Cycles(75_000), Cycles(75_000), 40);
    m.run_for(Cycles(3_100_000));

    println!("per-thread progress after 40 slices over 4 threads:");
    for i in 0..4 {
        println!("  batch[{i}]: {:>6} work units", ts.progress_of(&m, i));
    }
    let sched_cost = m.billed_cycles(ts.sched).0;
    println!(
        "scheduler thread total cost : {sched_cost} cycles (~{} per slice)",
        sched_cost / 41
    );
    println!(
        "thread stops (preemptions)  : {}",
        m.counters().get("thread.stops")
    );
    println!(
        "thread starts               : {}",
        m.counters().get("thread.starts")
    );
    println!("IRQs taken / IDT entries    : 0 and 0 — neither exists here");
    assert!(m.counters().get("thread.stops") >= 39);
}

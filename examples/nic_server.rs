//! A thread-per-request network server with **zero polling** — the §2
//! "Fast I/O without Inefficient Polling" scenario.
//!
//! A NIC DMA-writes packets and bumps its RX tail; a dispatcher hardware
//! thread parked on the tail wakes and hands each packet to a worker
//! hardware thread parked on its own mailbox. Under zero load the whole
//! engine consumes zero cycles; under load, latency stays near pure
//! service time.
//!
//! ```sh
//! cargo run --example nic_server
//! ```

use switchless::core::machine::{Machine, MachineConfig};
use switchless::dev::nic::{Nic, NicConfig};
use switchless::kern::ioengine::IoEngine;
use switchless::sim::rng::Rng;
use switchless::sim::time::{Cycles, Freq};
use switchless::wl::arrivals::poisson_arrivals;

fn main() {
    let mut cfg = MachineConfig::small();
    cfg.ptids_per_core = 128;
    let mut m = Machine::new(cfg);
    let nic = Nic::attach(&mut m, NicConfig::default());
    let engine = IoEngine::install(&mut m, 0, &nic, 32, 0x40000).expect("engine installs");
    m.run_for(Cycles(30_000));

    // Idle check: nobody burns cycles waiting for packets.
    let idle_before = m.counters().get("inst.executed");
    m.run_for(Cycles(1_000_000));
    let idle_insts = m.counters().get("inst.executed") - idle_before;
    println!("instructions executed during 1M idle cycles: {idle_insts} (no polling!)");

    // Offer a 50%-load Poisson stream of 1 µs requests.
    let service = Cycles(3_000);
    let n = 5_000usize;
    let mut rng = Rng::seed_from(42);
    let start = m.now() + Cycles(1_000);
    let arrivals = poisson_arrivals(&mut rng, start, 3_000.0, n);
    for (seq, &at) in arrivals.iter().enumerate() {
        engine.note_packet(seq as u64, at + Cycles(300), service);
        nic.schedule_rx(&mut m, at, seq as u64, &[0xab; 64]);
    }
    while engine.completed() < n as u64 {
        m.run_for(Cycles(1_000_000));
    }
    let lat = engine.latency();
    let ns = |c: u64| Freq::GHZ3.cycles_to_ns(Cycles(c));
    println!(
        "served {} requests of 1000ns service time:",
        engine.completed()
    );
    println!("  p50 latency : {:.0} ns", ns(lat.p50()));
    println!("  p99 latency : {:.0} ns", ns(lat.p99()));
    println!("  max latency : {:.0} ns", ns(lat.max()));
    println!(
        "  monitor wakes: {} / false wakes: {}",
        m.counters().get("monitor.wakes"),
        m.counters().get("monitor.false_wakes"),
    );
    assert_eq!(engine.completed(), n as u64);
}

//! An **unprivileged** hypervisor — §2 "Untrusted Hypervisors": VM-exits
//! become descriptor writes + thread wakes; the hypervisor runs in user
//! mode and controls the guest purely through a TDT `start` right.
//!
//! ```sh
//! cargo run --example untrusted_hypervisor
//! ```

use switchless::core::machine::{Machine, MachineConfig};
use switchless::core::tid::ThreadState;
use switchless::isa::arch::Mode;
use switchless::kern::hypervisor::{exits, install, HvConfig};
use switchless::sim::time::{Cycles, Freq};

fn main() {
    let mut m = Machine::new(MachineConfig::small());
    let h = install(
        &mut m,
        0,
        HvConfig {
            guest_work: 5_000,
            hv_work: 500,
            kernel_work: 800,
            iters: 500,
            exit_num: exits::IO,
        },
    )
    .expect("hypervisor stack installs");

    println!("guest  mode: {}", m.thread_mode(h.guest));
    println!(
        "hv     mode: {}  <- the hypervisor is untrusted",
        m.thread_mode(h.hv)
    );
    println!("kernel mode: {}", m.thread_mode(h.kernel));
    assert_eq!(m.thread_mode(h.hv), Mode::User);

    let t0 = m.now();
    assert!(m.run_until_state(h.guest, ThreadState::Halted, Cycles(100_000_000)));
    let elapsed = m.now() - t0;
    let exits_n = m.peek_u64(h.exits_word);
    println!("guest finished: {exits_n} I/O VM-exits handled");
    println!(
        "kernel served : {} chained I/O requests",
        m.peek_u64(h.io_word)
    );
    let per_exit = (elapsed.0 - 500 * 5_000) / exits_n; // subtract guest work
    println!(
        "per-exit cost (handling only): ~{} cycles ({:.0} ns) — vs ~1500 cycles \
         for a bare legacy VM-exit round trip before any isolation",
        per_exit,
        Freq::GHZ3.cycles_to_ns(Cycles(per_exit)),
    );
    println!(
        "vm_exit descriptors: {}, same-thread mode switches: {}",
        m.counters().get("exception.vm_exit"),
        m.counters().get("vmexit.same_thread"),
    );
}

//! An eBPF-style sandbox — §2: "other system components can be isolated
//! in a less privileged mode ... For eBPF, we could even relax some code
//! restrictions if it ran in its own privilege domain."
//!
//! A kernel thread feeds packet metadata to an *untrusted* user-mode
//! filter thread: it `rpush`es the argument into the (stopped) filter's
//! registers, `start`s it, and waits on the verdict word. Because the
//! filter is a plain hardware thread, it needs no verifier: if it
//! divides by zero, the fault disables *it*, writes a descriptor, and
//! the kernel — monitoring that descriptor — simply counts the kill and
//! moves on. Quick hand-offs give isolation without loss of performance.
//!
//! ```sh
//! cargo run --example sandboxed_filter
//! ```

use switchless::core::machine::{Machine, MachineConfig};
use switchless::core::perm::{Perms, TdtEntry};
use switchless::core::tid::{ThreadState, Vtid};
use switchless::isa::asm::assemble;
use switchless::sim::time::Cycles;

fn main() {
    let mut m = Machine::new(MachineConfig::small());
    let verdict = m.alloc(64);
    let filter_edp = m.alloc(32);

    // The untrusted filter: verdict = (packet_len % 7 == 0) ? drop : pass.
    // It is deliberately buggy: it divides by a header field, so a
    // crafted packet with field 0 faults it.
    let filter = assemble(&format!(
        r#"
        .base 0x20000
        entry:
            ; r1 = packet len, r2 = header field (rpushed by the kernel)
            movi r3, 7
            div r4, r1, r2     ; BUG: crafted packets have r2 == 0
            div r5, r1, r3
            mul r5, r5, r3
            sub r5, r1, r5     ; r5 = len % 7
            movi r6, 1
            beq r5, r0, isdrop
            movi r6, 2
        isdrop:
            st r6, {verdict}   ; 1 = drop, 2 = pass (wakes the kernel)
            stop 0             ; park self (vtid 0 = self)
            jmp entry          ; next start resumes here -> loop around
        "#,
        verdict = verdict,
    ))
    .expect("filter assembles");
    let f = m.load_program_user(0, &filter).expect("filter loads");
    m.set_thread_edp(f, filter_edp);
    // Filter's TDT: it may stop itself, nothing else.
    let ftdt = m.alloc(64);
    m.write_tdt_entry(ftdt, Vtid(0), TdtEntry::new(f.ptid, Perms::STOP));
    m.set_thread_tdtr(f, ftdt);

    // The kernel drives packets from host level (standing in for the
    // netstack thread): rpush args, start, await verdict or fault.
    let mut passed = 0u64;
    let mut dropped = 0u64;
    let mut killed = 0u64;
    let packets: Vec<(u64, u64)> = (1..=30)
        .map(|i| (100 + i * 3, if i % 10 == 0 { 0 } else { 1 }))
        .collect();

    for (len, field) in packets {
        m.poke_u64(verdict, 0);
        m.poke_u64(filter_edp, 0);
        // The §3.1 hand-off: write the stopped thread's registers, then
        // start it. (Host-level equivalents of rpush/start.)
        m.set_thread_reg(f, 1, len);
        m.set_thread_reg(f, 2, field);
        m.start_thread(f);
        m.run_for(Cycles(50_000));
        match (m.peek_u64(verdict), m.peek_u64(filter_edp)) {
            (1, _) => dropped += 1,
            (2, _) => passed += 1,
            (_, kind) if kind != 0 => {
                killed += 1;
                // The filter is disabled by its own fault; reset its pc
                // and let the next packet try again (a real kernel might
                // swap in a fresh filter image).
                assert_eq!(m.thread_state(f), ThreadState::Disabled);
                m.set_thread_reg(f, 2, 1);
            }
            other => panic!("no verdict and no fault: {other:?}"),
        }
    }
    println!("packets passed : {passed}");
    println!("packets dropped: {dropped}");
    println!("filter crashes : {killed} (each contained by a descriptor — kernel unharmed)");
    println!(
        "div-zero faults recorded by hardware: {}",
        m.counters().get("exception.div_zero")
    );
    assert_eq!(passed + dropped + killed, 30);
    assert!(killed >= 3);
    assert!(m.halted_reason().is_none(), "machine never triple-faults");
}

//! Quickstart: build a machine, run threads, see the paper's core
//! mechanism — a store waking a parked hardware thread — end to end.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use switchless::core::machine::{Machine, MachineConfig};
use switchless::isa::asm::assemble;
use switchless::sim::time::{Cycles, Freq};

fn main() {
    // A single-core machine with 64 software-controlled hardware threads.
    let mut m = Machine::new(MachineConfig::small());

    // A thread that blocks on a mailbox — `monitor` + `mwait`, the §3.1
    // primitives — then computes on whatever was stored there.
    let prog = assemble(
        r#"
        mailbox: .word 0
        entry:
            monitor mailbox     ; arm a watch on the mailbox address
            ld r2, mailbox      ; check after arming (no lost wakeups)
            bne r2, r0, have
            mwait               ; block: costs nothing while waiting
        have:
            ld r1, mailbox
            addi r1, r1, 1
            halt
        "#,
    )
    .expect("assembles");
    let mailbox = prog.symbol("mailbox").expect("symbol");

    let tid = m.load_program(0, &prog).expect("loads");
    m.start_thread(tid);
    m.run_for(Cycles(5_000));
    println!("thread state after 5k cycles : {}", m.thread_state(tid));
    println!("cycles billed while waiting  : {}", m.billed_cycles(tid));

    // An external agent (device DMA, another core, the host) writes the
    // mailbox. That write *is* the wakeup — no interrupt, no scheduler.
    let t0 = m.now();
    m.poke_u64(mailbox, 41);
    m.run_until_state(
        tid,
        switchless::core::tid::ThreadState::Halted,
        Cycles(10_000),
    );

    println!("r1 computed by woken thread  : {}", m.thread_reg(tid, 1));
    println!(
        "write-to-halt time           : {} ({:.0} ns at 3GHz)",
        m.now() - t0,
        Freq::GHZ3.cycles_to_ns(m.now() - t0),
    );
    let h = m.wake_latency();
    println!(
        "wake-to-execution latency    : p50={}cy (the paper's ~20-cycle pipeline refill)",
        h.p50()
    );
    assert_eq!(m.thread_reg(tid, 1), 42);
}

//! A microkernel with isolated, *user-mode* services — §2 "Faster
//! Microkernels": the file system and network stack run on dedicated
//! hardware threads, and IPC is two stores and two wakes.
//!
//! ```sh
//! cargo run --example microkernel_fs
//! ```

use switchless::core::machine::{Machine, MachineConfig};
use switchless::core::tid::ThreadState;
use switchless::isa::asm::assemble;
use switchless::kern::microkernel::Microkernel;
use switchless::sim::time::{Cycles, Freq};

fn main() {
    let mut m = Machine::new(MachineConfig::small());

    // Two services: a cached-FS op (~0.5 µs) and a heavier netstack op.
    let mk = Microkernel::install(
        &mut m,
        0,
        &[("fs", 1_500, false), ("netstack", 4_000, false)],
        0x40000,
    )
    .expect("services install");
    m.run_for(Cycles(30_000));
    for (name, svc) in [("fs", &mk.services[0]), ("netstack", &mk.services[1])] {
        println!(
            "service '{name}': mode={} state={}",
            m.thread_mode(svc.tid),
            m.thread_state(svc.tid)
        );
    }

    // A client hammers the FS service with 1000 synchronous IPCs.
    let iters = 1_000u32;
    let client = assemble(&mk.client_program(0, iters, 0x60000)).expect("client");
    let app = m.load_program_user(0, &client).expect("loads");
    let t0 = m.now();
    m.start_thread(app);
    assert!(m.run_until_state(app, ThreadState::Halted, Cycles(100_000_000)));
    let per_call = (m.now() - t0).0 / u64::from(iters);
    println!(
        "fs IPC round trip: {} cycles ({:.0} ns) including 500ns of service work",
        per_call,
        Freq::GHZ3.cycles_to_ns(Cycles(per_call)),
    );
    println!("fs ops served: {}", mk.ops(&m, 0));

    // And one client for the netstack, concurrently with nothing else.
    let nclient = assemble(&mk.client_program(1, 200, 0x70000)).expect("client");
    let napp = m.load_program_user(0, &nclient).expect("loads");
    m.start_thread(napp);
    assert!(m.run_until_state(napp, ThreadState::Halted, Cycles(100_000_000)));
    println!("netstack ops served: {}", mk.ops(&m, 1));
    println!(
        "mode switches taken by anyone, ever: {}",
        m.counters().get("syscall.same_thread") + m.counters().get("vmexit.same_thread"),
    );
}

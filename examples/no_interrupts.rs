//! "No More Interrupts" — §2: the kernel designates a hardware thread
//! per event type instead of registering IDT handlers; the APIC timer
//! *writes a counter* instead of raising an interrupt.
//!
//! ```sh
//! cargo run --example no_interrupts
//! ```

use switchless::core::machine::{Machine, MachineConfig};
use switchless::dev::timer::ApicTimer;
use switchless::kern::nointr::EventHandlerSet;
use switchless::sim::time::{Cycles, Freq};

fn main() {
    let mut m = Machine::new(MachineConfig::small());

    // Three event types, each with its own parked handler thread. The
    // scheduler-tick handler gets the highest priority — §4's answer to
    // time-critical interrupts.
    let set = EventHandlerSet::install(
        &mut m,
        0,
        &[
            ("sched-tick", 800, 7),
            ("nic-rx", 1_500, 6),
            ("disk-cq", 1_200, 5),
        ],
        0x40000,
    )
    .expect("handlers install");
    m.run_for(Cycles(20_000));
    m.reset_wake_latency();

    // The timer ticks every 10 µs by incrementing the handler's counter.
    ApicTimer::start_periodic(
        &mut m,
        set.handlers[0].event_word,
        Cycles(10_000),
        Cycles(30_000),
        50,
    );
    // Sporadic NIC and disk events.
    for i in 0..20u64 {
        let nic_word = set.handlers[1].event_word;
        m.at(Cycles(40_000 + i * 61_000), move |mach| {
            let v = mach.peek_u64(nic_word) + 1;
            mach.dma_write(nic_word, &v.to_le_bytes());
        });
        let disk_word = set.handlers[2].event_word;
        m.at(Cycles(55_000 + i * 83_000), move |mach| {
            let v = mach.peek_u64(disk_word) + 1;
            mach.dma_write(disk_word, &v.to_le_bytes());
        });
    }
    m.run_for(Cycles(2_500_000));

    for (i, name) in ["sched-tick", "nic-rx", "disk-cq"].iter().enumerate() {
        println!("{name:10} handled {:3} events", set.handled(&m, i));
    }
    let h = m.wake_latency();
    println!(
        "event-to-handler latency: p50={}cy ({:.0}ns)  p99={}cy ({:.0}ns)",
        h.p50(),
        Freq::GHZ3.cycles_to_ns(Cycles(h.p50())),
        h.p99(),
        Freq::GHZ3.cycles_to_ns(Cycles(h.p99())),
    );
    println!(
        "IRQ-context entries taken: 0 (there is no IDT); timer ticks: {}",
        m.counters().get("timer.ticks"),
    );
}

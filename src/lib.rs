//! # switchless
//!
//! A production-quality reproduction of **"A Case Against (Most) Context
//! Switches"** (Humphries, Kaffes, Mazières, Kozyrakis — HotOS '21).
//!
//! The paper proposes a hardware threading model with 10s–1000s of
//! *software-controlled hardware threads per core*, plus ISA extensions
//! (`monitor`/`mwait` on any address, `start`/`stop`, `rpull`/`rpush`,
//! `invtid`, a Thread Descriptor Table with non-hierarchical permissions)
//! that together eliminate most context switches: interrupts, polling
//! loops, mode-switching system calls, VM-exits, microkernel IPC scheduling
//! and software-thread multiplexing.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`sim`] — discrete-event engine, deterministic RNG, statistics.
//! * [`mem`] — cache/TLB/DRAM hierarchy, cache partitioning, the
//!   generalized monitor filter that watches *any* store including DMA.
//! * [`isa`] — the instruction set (with the paper's extensions), binary
//!   encoding, assembler and disassembler.
//! * [`core`] — **the paper's contribution**: hardware threads
//!   (`ptid`/`vtid`), thread states, the TDT security model, exception
//!   descriptors, thread-state storage tiers, the hardware scheduler, and
//!   the [`core::machine::Machine`] that executes programs.
//! * [`dev`] — NIC / SSD / timer device models with DMA and the
//!   interrupt→memory-write bridge.
//! * [`legacy`] — the world being argued against: IDT + interrupts,
//!   software context switches, an OS run-queue scheduler, synchronous and
//!   FlexSC-style system calls, dedicated-core polling.
//! * [`kern`] — the paper's §2 use cases built on the new model.
//! * [`wl`] — workload generators and load-sweep drivers.
//!
//! # Quickstart
//!
//! ```
//! use switchless::core::machine::{Machine, MachineConfig};
//! use switchless::isa::asm::assemble;
//!
//! // Build a machine with one core and 64 hardware threads.
//! let mut m = Machine::new(MachineConfig::small());
//!
//! // A thread that waits on a mailbox, then adds 1 to what it receives.
//! let prog = assemble(
//!     r#"
//!     mailbox: .word 0
//!     entry:
//!         monitor mailbox
//!         mwait
//!         ld r1, mailbox
//!         addi r1, r1, 1
//!         halt
//!     "#,
//! )
//! .unwrap();
//! let tid = m.load_program(0, &prog).unwrap();
//! m.start_thread(tid);
//! m.run_for(switchless::sim::time::Cycles(1_000));
//! // The thread is parked in `mwait`; writing the mailbox wakes it.
//! let mailbox = prog.symbol("mailbox").unwrap();
//! m.poke_u64(mailbox, 41);
//! m.run_for(switchless::sim::time::Cycles(10_000));
//! assert_eq!(m.thread_reg(tid, 1), 42);
//! ```

pub use switchless_core as core;
pub use switchless_dev as dev;
pub use switchless_isa as isa;
pub use switchless_kern as kern;
pub use switchless_legacy as legacy;
pub use switchless_mem as mem;
pub use switchless_sim as sim;
pub use switchless_wl as wl;
